//! Shared persistence substrate for every on-disk format in the crate.
//!
//! Three formats persist state next to each other — JSON checkpoints
//! ([`crate::checkpoint`]), the binary write-ahead log ([`crate::wal`]),
//! and the compressed mode archive ([`crate::archive`]) — and all three
//! share the same durability discipline. This module owns the shared
//! primitives so the discipline lives in exactly one place:
//!
//! * [`crc32`] — CRC-32 (IEEE 802.3, reflected), the checksum every
//!   format frames its payloads with;
//! * [`format_text_header`] / [`parse_text_header`] — the one-line
//!   `MAGIC v<version> <tokens...>\n` versioned header grammar;
//! * [`atomic_write`] — unique temp sibling + rename + file fsync +
//!   parent-directory fsync, so a crash mid-write can never leave a torn
//!   file under the final name;
//! * [`BlockWriter`] / [`BlockReader`] / [`read_block_at`] — the
//!   `[u32 len LE][u32 crc32 LE][payload]` block framing, with sequential
//!   intact-prefix scans (WAL recovery) and seekable single-block reads
//!   (archive replay);
//! * [`prune_keep_last`] — keep-last-K retention over `(sort-key, path)`
//!   file lists, returning the truncation floor a WAL may advance to.
//!
//! The wire formats themselves are unchanged by this extraction: a
//! checkpoint or WAL written before this module existed still loads.

use std::io::{Read, Seek, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// `u32 len + u32 crc` preceding every framed block payload.
pub const FRAME_HEAD: usize = 8;

/// Upper bound on a single framed payload; anything larger is treated as
/// corruption rather than an allocation request.
pub const MAX_FRAME_PAYLOAD: u32 = 1 << 30;

// ---------------------------------------------------------------------------
// Checksum
// ---------------------------------------------------------------------------

/// CRC-32 (IEEE 802.3, reflected) of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, slot) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 == 1 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *slot = c;
        }
        t
    });
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc = table[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    crc ^ 0xFFFF_FFFF
}

// ---------------------------------------------------------------------------
// Atomic writes
// ---------------------------------------------------------------------------

/// Flushes a directory's entry table to stable storage. On POSIX, a
/// rename is only durable once the *directory* is fsynced — fsyncing the
/// file alone leaves the new directory entry in the page cache, so a
/// power loss right after a "successful" save can silently revert it.
/// Checkpoint saves, WAL segment creation/truncation, and archive writes
/// all route through this. Non-Unix platforms have no directory-fsync
/// primitive; there the rename itself is the best available barrier.
pub fn fsync_dir(dir: &Path) -> std::io::Result<()> {
    #[cfg(unix)]
    {
        std::fs::File::open(dir)?.sync_all()
    }
    #[cfg(not(unix))]
    {
        let _ = dir;
        Ok(())
    }
}

/// A temp-file sibling of `path` that is unique to this call.
///
/// Concurrent writers into one directory must never share a temp path:
/// with a fixed `.tmp` suffix, writer B's `File::create` would truncate
/// writer A's half-written payload and the subsequent renames would race
/// (one fails with `NotFound`, or a torn mix gets promoted). A
/// process-wide counter plus the pid keeps every in-flight write on its
/// own file; readers and directory scans never look at `.tmp` names.
pub fn unique_tmp_path(path: &Path) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let seq = SEQ.fetch_add(1, Ordering::Relaxed);
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(format!(".{}-{seq}.tmp", std::process::id()));
    PathBuf::from(tmp)
}

/// Writes `bytes` to `path` atomically: unique temp sibling, then rename.
/// With `durable` set, the file is fsynced before the rename and the
/// parent directory after it, so a crash can neither tear the file nor
/// revert an acked write. Without it the fsyncs are skipped — the caller
/// has decided the content is already covered by some other durable
/// artefact (e.g. a WAL retention rewrite right after a durable
/// checkpoint). On failure the temp sibling is removed best-effort.
pub fn atomic_write(path: &Path, bytes: &[u8], durable: bool) -> std::io::Result<()> {
    let tmp = unique_tmp_path(path);
    let wrote = (|| {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        if durable {
            // Flush to stable storage before the rename makes the file
            // visible under its final name; a crash before this point
            // leaves only the temp file, which readers never look at.
            f.sync_all()?;
        }
        std::fs::rename(&tmp, path)?;
        if durable {
            // The rename itself lives in the directory's entry table:
            // without this fsync a power loss can revert an acked save.
            // A bare relative filename has `Some("")` as its parent,
            // which opens as ENOENT — that means the current directory.
            match path.parent() {
                Some(parent) if parent.as_os_str().is_empty() => fsync_dir(Path::new(".")),
                Some(parent) => fsync_dir(parent),
                None => Ok(()),
            }
        } else {
            Ok(())
        }
    })();
    if wrote.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    wrote
}

// ---------------------------------------------------------------------------
// Versioned text headers
// ---------------------------------------------------------------------------

/// Why a versioned header line did not parse. Callers map these onto
/// their format-specific error types (and error strings), so existing
/// messages stay stable.
#[derive(Debug)]
pub enum HeaderError {
    /// The line does not start with the expected magic token.
    BadMagic,
    /// The `v<N>` version token is missing or malformed.
    NoVersion,
    /// The version is newer than the caller supports.
    Unsupported(u32),
}

/// A parsed `MAGIC v<version> <tokens...>` header line.
#[derive(Debug)]
pub struct TextHeader<'a> {
    /// The format version the file declares.
    pub version: u32,
    /// The format-specific tokens after the version, in order.
    pub rest: Vec<&'a str>,
}

/// Formats the one-line versioned header every format starts with:
/// `MAGIC v<version> <tokens...>\n` (the space before the tokens is
/// omitted when there are none).
pub fn format_text_header(magic: &str, version: u32, rest: &[&str]) -> String {
    let mut line = format!("{magic} v{version}");
    for tok in rest {
        line.push(' ');
        line.push_str(tok);
    }
    line.push('\n');
    line
}

/// Parses a header line (without the trailing newline) against `magic`,
/// rejecting versions newer than `max_version`.
pub fn parse_text_header<'a>(
    line: &'a str,
    magic: &str,
    max_version: u32,
) -> Result<TextHeader<'a>, HeaderError> {
    let mut parts = line.split(' ');
    if parts.next() != Some(magic) {
        return Err(HeaderError::BadMagic);
    }
    let version: u32 = parts
        .next()
        .and_then(|v| v.strip_prefix('v'))
        .and_then(|v| v.parse().ok())
        .ok_or(HeaderError::NoVersion)?;
    if version > max_version {
        return Err(HeaderError::Unsupported(version));
    }
    Ok(TextHeader {
        version,
        rest: parts.collect(),
    })
}

// ---------------------------------------------------------------------------
// Block framing
// ---------------------------------------------------------------------------

/// Why a framed block could not be read back.
#[derive(Debug)]
pub enum BlockError {
    /// Underlying filesystem failure.
    Io(std::io::Error),
    /// The frame head or payload extends past the end of the file.
    Truncated,
    /// The frame head declares a payload larger than [`MAX_FRAME_PAYLOAD`].
    TooLarge(u32),
    /// The payload's CRC-32 does not match the frame head.
    Checksum {
        /// Checksum the frame head promised.
        expected: u32,
        /// Checksum of the payload as read.
        got: u32,
    },
}

impl std::fmt::Display for BlockError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BlockError::Io(e) => write!(f, "block io error: {e}"),
            BlockError::Truncated => write!(f, "truncated block frame"),
            BlockError::TooLarge(n) => {
                write!(f, "block payload of {n} bytes exceeds {MAX_FRAME_PAYLOAD}")
            }
            BlockError::Checksum { expected, got } => {
                write!(
                    f,
                    "block checksum mismatch: head {expected:08x}, payload {got:08x}"
                )
            }
        }
    }
}

impl std::error::Error for BlockError {}

impl From<std::io::Error> for BlockError {
    fn from(e: std::io::Error) -> Self {
        BlockError::Io(e)
    }
}

/// Where a written block landed: the absolute offset of its frame head
/// and the payload length. An index built from these handles lets a
/// reader seek straight to any block.
#[derive(Clone, Copy, Debug)]
pub struct BlockHandle {
    /// Absolute byte offset of the `[len][crc]` frame head.
    pub offset: u64,
    /// Payload length in bytes (the frame occupies `FRAME_HEAD + len`).
    pub len: u32,
}

/// Appends `[u32 len LE][u32 crc32 LE][payload]` to `out`.
pub fn append_frame(out: &mut Vec<u8>, payload: &[u8]) {
    out.reserve(FRAME_HEAD + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
}

/// One block as a standalone frame byte vector.
pub fn encode_frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(FRAME_HEAD + payload.len());
    append_frame(&mut out, payload);
    out
}

/// Validates the frame starting at `at` in a byte image and returns its
/// payload range. `None` means the bytes from `at` on are not an intact
/// frame — torn tail, bit rot, or an absurd length.
pub fn frame_payload_at(bytes: &[u8], at: usize) -> Option<std::ops::Range<usize>> {
    let len = u32_at(bytes, at)?;
    let crc = u32_at(bytes, at + 4)?;
    if len > MAX_FRAME_PAYLOAD {
        return None;
    }
    let start = at + FRAME_HEAD;
    let payload = bytes.get(start..start + len as usize)?;
    if crc32(payload) != crc {
        return None;
    }
    Some(start..start + len as usize)
}

/// Little-endian `u32` at `at`, if in bounds.
pub fn u32_at(bytes: &[u8], at: usize) -> Option<u32> {
    bytes
        .get(at..at + 4)
        .and_then(|b| b.try_into().ok())
        .map(u32::from_le_bytes)
}

/// Little-endian `u64` at `at`, if in bounds.
pub fn u64_at(bytes: &[u8], at: usize) -> Option<u64> {
    bytes
        .get(at..at + 8)
        .and_then(|b| b.try_into().ok())
        .map(u64::from_le_bytes)
}

/// Writes CRC-framed blocks to a byte sink, tracking absolute offsets so
/// the caller can build a seekable index as it writes.
#[derive(Debug)]
pub struct BlockWriter<W: Write> {
    sink: W,
    offset: u64,
}

impl<W: Write> BlockWriter<W> {
    /// A writer whose next block lands at absolute offset `offset` (the
    /// bytes before it — e.g. a text header — were written by the caller).
    pub fn with_offset(sink: W, offset: u64) -> BlockWriter<W> {
        BlockWriter { sink, offset }
    }

    /// Frames `payload` and writes it as a single `write_all`, returning
    /// where it landed.
    pub fn write_block(&mut self, payload: &[u8]) -> std::io::Result<BlockHandle> {
        let frame = encode_frame(payload);
        self.sink.write_all(&frame)?;
        let handle = BlockHandle {
            offset: self.offset,
            len: payload.len() as u32,
        };
        self.offset += frame.len() as u64;
        Ok(handle)
    }

    /// Absolute offset the next block would land at.
    pub fn offset(&self) -> u64 {
        self.offset
    }

    /// The underlying sink (e.g. to fsync a file after the last block).
    pub fn get_mut(&mut self) -> &mut W {
        &mut self.sink
    }

    /// Consumes the writer, returning the sink.
    pub fn into_inner(self) -> W {
        self.sink
    }
}

/// Sequential scanner over a byte image of CRC-framed blocks: yields each
/// intact payload in order and stops at the first damaged frame, which is
/// how WAL recovery finds the intact prefix to truncate back to.
#[derive(Debug)]
pub struct BlockReader<'a> {
    bytes: &'a [u8],
    at: usize,
    torn: bool,
}

impl<'a> BlockReader<'a> {
    /// A scanner starting at byte offset `start` (past any text header).
    pub fn new(bytes: &'a [u8], start: usize) -> BlockReader<'a> {
        BlockReader {
            bytes,
            at: start,
            torn: false,
        }
    }

    /// The next intact block: `(frame-head offset, payload)`. `None` at
    /// the end of the image or at the first damaged frame (check
    /// [`BlockReader::torn`] to distinguish).
    pub fn next_block(&mut self) -> Option<(u64, &'a [u8])> {
        if self.torn || self.at >= self.bytes.len() {
            return None;
        }
        match frame_payload_at(self.bytes, self.at) {
            Some(range) => {
                let head = self.at as u64;
                self.at = range.end;
                Some((head, &self.bytes[range]))
            }
            None => {
                self.torn = true;
                None
            }
        }
    }

    /// Byte offset of the end of the intact prefix scanned so far.
    pub fn pos(&self) -> usize {
        self.at
    }

    /// True once a damaged frame stopped the scan before the end of the
    /// image.
    pub fn torn(&self) -> bool {
        self.torn
    }
}

/// Seeks to `offset` in `src` and reads back one framed block, verifying
/// length and checksum. This is the random-access read path archive
/// replay uses to stream only the blocks a time range admits.
pub fn read_block_at(src: &mut (impl Read + Seek), offset: u64) -> Result<Vec<u8>, BlockError> {
    src.seek(std::io::SeekFrom::Start(offset))?;
    let mut head = [0u8; FRAME_HEAD];
    read_exact_or_truncated(src, &mut head)?;
    let len = u32::from_le_bytes([head[0], head[1], head[2], head[3]]);
    let expected = u32::from_le_bytes([head[4], head[5], head[6], head[7]]);
    if len > MAX_FRAME_PAYLOAD {
        return Err(BlockError::TooLarge(len));
    }
    let mut payload = vec![0u8; len as usize];
    read_exact_or_truncated(src, &mut payload)?;
    let got = crc32(&payload);
    if got != expected {
        return Err(BlockError::Checksum { expected, got });
    }
    Ok(payload)
}

fn read_exact_or_truncated(src: &mut impl Read, buf: &mut [u8]) -> Result<(), BlockError> {
    src.read_exact(buf).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            BlockError::Truncated
        } else {
            BlockError::Io(e)
        }
    })
}

// ---------------------------------------------------------------------------
// Retention
// ---------------------------------------------------------------------------

/// What a [`prune_keep_last`] pass did.
#[derive(Debug)]
pub struct Pruned {
    /// Files deleted.
    pub deleted: usize,
    /// Sort key of the oldest *surviving* file — the floor a dependent
    /// log may truncate to. `None` when there were no files at all.
    pub floor: Option<u64>,
}

/// Keep-last-K retention over `(sort-key, path)` pairs sorted newest
/// first: deletes everything past the first `keep` entries (never the
/// newest) and reports the surviving floor. `keep == 0` disables
/// deletion. Failures to delete are skipped — retention is best-effort
/// and must never fail the save that triggered it.
pub fn prune_keep_last(files: &[(u64, PathBuf)], keep: usize) -> Pruned {
    if files.is_empty() {
        return Pruned {
            deleted: 0,
            floor: None,
        };
    }
    if keep == 0 || files.len() <= keep {
        return Pruned {
            deleted: 0,
            floor: files.last().map(|(s, _)| *s),
        };
    }
    let mut deleted = 0;
    for (_, path) in &files[keep..] {
        if std::fs::remove_file(path).is_ok() {
            deleted += 1;
        }
    }
    Pruned {
        deleted,
        floor: files.get(keep - 1).map(|(s, _)| *s),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE 802.3 reference values.
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn text_header_roundtrips() {
        let line = format_text_header("IMRDMD-X", 3, &["abc", "42"]);
        assert_eq!(line, "IMRDMD-X v3 abc 42\n");
        let h = parse_text_header(line.trim_end(), "IMRDMD-X", 3).expect("parse");
        assert_eq!(h.version, 3);
        assert_eq!(h.rest, vec!["abc", "42"]);
        assert!(matches!(
            parse_text_header("OTHER v1", "IMRDMD-X", 3),
            Err(HeaderError::BadMagic)
        ));
        assert!(matches!(
            parse_text_header("IMRDMD-X three", "IMRDMD-X", 3),
            Err(HeaderError::NoVersion)
        ));
        assert!(matches!(
            parse_text_header("IMRDMD-X v4", "IMRDMD-X", 3),
            Err(HeaderError::Unsupported(4))
        ));
    }

    #[test]
    fn block_writer_offsets_feed_seekable_reads() {
        let mut buf = Vec::new();
        buf.extend_from_slice(b"HDR\n");
        let mut w = BlockWriter::with_offset(&mut buf, 4);
        let a = w.write_block(b"first").expect("write");
        let b = w.write_block(b"second-block").expect("write");
        assert_eq!(a.offset, 4);
        assert_eq!(b.offset, 4 + FRAME_HEAD as u64 + 5);
        let mut cur = std::io::Cursor::new(&buf);
        assert_eq!(
            read_block_at(&mut cur, b.offset).expect("read"),
            b"second-block"
        );
        assert_eq!(read_block_at(&mut cur, a.offset).expect("read"), b"first");
    }

    #[test]
    fn sequential_scan_stops_at_damage() {
        let mut buf = Vec::new();
        append_frame(&mut buf, b"one");
        append_frame(&mut buf, b"two");
        let intact_len = buf.len();
        append_frame(&mut buf, b"three");
        let at = buf.len() - 2;
        buf[at] ^= 0x10; // bit-flip inside the last payload
        let mut r = BlockReader::new(&buf, 0);
        assert_eq!(r.next_block().map(|(_, p)| p), Some(&b"one"[..]));
        assert_eq!(r.next_block().map(|(_, p)| p), Some(&b"two"[..]));
        assert!(r.next_block().is_none());
        assert!(r.torn());
        assert_eq!(r.pos(), intact_len);
    }

    #[test]
    fn corrupt_block_is_a_typed_error_on_seekable_reads() {
        let mut buf = encode_frame(b"payload");
        buf[FRAME_HEAD + 2] ^= 0x01;
        let mut cur = std::io::Cursor::new(&buf);
        assert!(matches!(
            read_block_at(&mut cur, 0),
            Err(BlockError::Checksum { .. })
        ));
        let mut cur = std::io::Cursor::new(&buf[..buf.len() - 3]);
        assert!(matches!(
            read_block_at(&mut cur, 0),
            Err(BlockError::Truncated)
        ));
    }

    #[test]
    fn atomic_write_replaces_and_cleans_up() {
        let dir = std::env::temp_dir().join(format!("imrdmd-storage-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("file.bin");
        atomic_write(&path, b"v1", true).expect("write");
        atomic_write(&path, b"v2", false).expect("overwrite");
        assert_eq!(std::fs::read(&path).expect("read"), b"v2");
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .expect("scan")
            .flatten()
            .filter(|e| e.path().extension().is_some_and(|x| x == "tmp"))
            .collect();
        assert!(leftovers.is_empty(), "no temp siblings survive");
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// A bare relative filename (`Some("")` parent) must still write
    /// durably: the directory fsync resolves to the current directory
    /// instead of failing ENOENT after the rename already landed.
    #[test]
    fn atomic_write_accepts_bare_relative_filenames() {
        let dir = std::env::temp_dir().join(format!("imrdmd-storage-bare-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("mkdir");
        let prev = std::env::current_dir().expect("cwd");
        std::env::set_current_dir(&dir).expect("chdir");
        let result = atomic_write(Path::new("bare.bin"), b"payload", true);
        let content = std::fs::read("bare.bin");
        std::env::set_current_dir(prev).expect("chdir back");
        result.expect("durable write with empty parent");
        assert_eq!(content.expect("read back").as_slice(), b"payload");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn prune_keeps_newest_and_reports_floor() {
        let dir = std::env::temp_dir().join(format!("imrdmd-prune-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("mkdir");
        let files: Vec<(u64, PathBuf)> = [40u64, 30, 20, 10]
            .iter()
            .map(|s| {
                let p = dir.join(format!("f-{s}"));
                std::fs::write(&p, b"x").expect("write");
                (*s, p)
            })
            .collect();
        let pr = prune_keep_last(&files, 2);
        assert_eq!(pr.deleted, 2);
        assert_eq!(pr.floor, Some(30));
        assert!(files[0].1.exists() && files[1].1.exists());
        assert!(!files[2].1.exists() && !files[3].1.exists());
        let pr = prune_keep_last(&files[..2], 0);
        assert_eq!((pr.deleted, pr.floor), (0, Some(30)));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
