//! Compressed on-disk mode archive with seekable time-range replay.
//!
//! The paper's headline storage claim is that the mode tree reduces
//! telemetry "from terabytes to megabytes". [`crate::compression`] only
//! *accounts* for that; this module produces the artefact: a fitted
//! [`IMrDmd`] tree serialised as one CRC-framed block per tree node, with
//! the bulky mode matrices quantized and delta-encoded per
//! [`QuantTier`], plus a seekable index — so any time range can be
//! reconstructed by streaming only the blocks whose windows overlap it,
//! never deserialising the whole archive.
//!
//! On-disk layout (framing primitives from [`crate::storage`]):
//!
//! ```text
//! IMRDMD-ARCH v1 <tier>\n                      text header
//! [len][crc][meta]                             tier, node count, shape, dt
//! [len][crc][node 0] ... [len][crc][node N-1]  one block per tree node
//! [len][crc][index]                            N × (start, window, offset, len, level)
//! [u64 index-offset][u32 crc][IMRDMDIX]        20-byte fixed trailer
//! ```
//!
//! Every node block stores its eigenvalues and amplitudes as exact `f64`
//! bit patterns at every tier — quantizing ω would compound through
//! `exp(ω t)` — and only the `rows × k` mode matrix is tiered:
//!
//! * `f64` — XOR-delta of the raw 64-bit patterns (lossless; replay is
//!   **bitwise-identical** to the in-memory model's reconstruction);
//! * `f32` — XOR-delta of 32-bit patterns after an `f32` round
//!   (relative reconstruction error ≤ 1e-5);
//! * `q16` — per-mode-column scaled 16-bit integers with wrapping-delta
//!   encoding (relative reconstruction error ≤ 1e-2), the tier that
//!   realises the ≥100× paper ratio.
//!
//! Replay filters index entries by the node-admission rule that
//! reconstruction itself uses (`start < t1 && start + window > t0`) and
//! feeds the decoded nodes to the same reconstruction kernel **in file
//! order** (= tree iteration order). Nodes outside the range contribute
//! exactly nothing to a reconstruction, so skipping their blocks leaves
//! the floating-point addition order of the admitted nodes unchanged —
//! which is what makes f64-tier replay of any range bitwise-identical to
//! [`IMrDmd::reconstruct_range`] on the live model.

use crate::imrdmd::IMrDmd;
use crate::mrdmd::{reconstruct_nodes, ModeSet};
use crate::storage::{self, u32_at, u64_at, BlockError, HeaderError};
use hpc_linalg::pool::WorkerPool;
use hpc_linalg::{c64, CMat, Mat};
use std::io::{Read as _, Seek as _};
use std::path::Path;

/// First token of every archive file.
pub const ARCHIVE_MAGIC: &str = "IMRDMD-ARCH";
/// Current on-disk format version.
pub const ARCHIVE_VERSION: u32 = 1;
/// Fixed trailer: `u64 index-offset + u32 crc32(offset) + 8-byte magic`.
const TRAILER_LEN: usize = 20;
/// Trailer magic, so `open` can reject non-archives before seeking.
const TRAILER_MAGIC: &[u8; 8] = b"IMRDMDIX";
/// Fixed node-payload prefix: level/start/window/step/row_offset (`u64`
/// each) + rows/k (`u32` each).
const NODE_PREFIX: usize = 5 * 8 + 2 * 4;
/// q16 quantization ceiling (symmetric, so the delta domain wraps cleanly).
const Q16_MAX: f64 = 32767.0;

// ---------------------------------------------------------------------------
// Quantization tiers
// ---------------------------------------------------------------------------

/// How aggressively an archive quantizes the mode matrices.
#[derive(Clone, Copy, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum QuantTier {
    /// Exact 64-bit patterns: lossless, replay is bitwise.
    F64,
    /// 32-bit float round: relative error ≤ 1e-5.
    F32,
    /// Per-column scaled 16-bit integers: relative error ≤ 1e-2.
    Q16,
}

impl QuantTier {
    /// Parses the `--tier` flag grammar: `f64`, `f32`, `q16`.
    pub fn parse(s: &str) -> Option<QuantTier> {
        match s {
            "f64" => Some(QuantTier::F64),
            "f32" => Some(QuantTier::F32),
            "q16" => Some(QuantTier::Q16),
            _ => None,
        }
    }

    /// The flag token this tier parses from.
    pub fn as_str(self) -> &'static str {
        match self {
            QuantTier::F64 => "f64",
            QuantTier::F32 => "f32",
            QuantTier::Q16 => "q16",
        }
    }

    /// Documented relative L∞ reconstruction-error bound of this tier's
    /// replay against f64-tier replay (0 = bitwise).
    pub fn rel_error_bound(self) -> f64 {
        match self {
            QuantTier::F64 => 0.0,
            QuantTier::F32 => 1e-5,
            QuantTier::Q16 => 1e-2,
        }
    }

    fn code(self) -> u32 {
        match self {
            QuantTier::F64 => 0,
            QuantTier::F32 => 1,
            QuantTier::Q16 => 2,
        }
    }

    fn from_code(code: u32) -> Option<QuantTier> {
        match code {
            0 => Some(QuantTier::F64),
            1 => Some(QuantTier::F32),
            2 => Some(QuantTier::Q16),
            _ => None,
        }
    }

    /// Bytes the mode matrix of a `rows × k` node occupies at this tier.
    fn modes_bytes(self, rows: usize, k: usize) -> usize {
        match self {
            QuantTier::F64 => rows * k * 16,
            QuantTier::F32 => rows * k * 8,
            // Per-column f64 scale + 2 × i16 per element.
            QuantTier::Q16 => k * 8 + rows * k * 4,
        }
    }
}

impl std::fmt::Display for QuantTier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

/// Why an archive could not be written, opened, or replayed.
#[derive(Debug)]
pub enum ArchiveError {
    /// Underlying filesystem failure.
    Io(std::io::Error),
    /// The file's header line or trailer is not a valid archive envelope.
    BadHeader(String),
    /// A framed block is torn, truncated, or checksum-damaged.
    Block(BlockError),
    /// A block passed its CRC but its payload does not decode.
    Codec(String),
    /// The requested replay range is outside the archived timeline.
    BadRange {
        /// Requested range start (snapshot index).
        t0: usize,
        /// Requested range end (exclusive).
        t1: usize,
        /// Snapshots the archive covers.
        n_steps: usize,
    },
}

impl std::fmt::Display for ArchiveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArchiveError::Io(e) => write!(f, "archive io error: {e}"),
            ArchiveError::BadHeader(m) => write!(f, "bad archive header: {m}"),
            ArchiveError::Block(e) => write!(f, "damaged archive block: {e}"),
            ArchiveError::Codec(m) => write!(f, "archive block decode failed: {m}"),
            ArchiveError::BadRange { t0, t1, n_steps } => {
                write!(
                    f,
                    "replay range [{t0}, {t1}) outside archived timeline of {n_steps} steps"
                )
            }
        }
    }
}

impl std::error::Error for ArchiveError {}

impl From<std::io::Error> for ArchiveError {
    fn from(e: std::io::Error) -> Self {
        ArchiveError::Io(e)
    }
}

impl From<BlockError> for ArchiveError {
    fn from(e: BlockError) -> Self {
        ArchiveError::Block(e)
    }
}

// ---------------------------------------------------------------------------
// Node codec
// ---------------------------------------------------------------------------

fn push_c64_exact(out: &mut Vec<u8>, vs: &[c64]) {
    for v in vs {
        out.extend_from_slice(&v.re.to_bits().to_le_bytes());
        out.extend_from_slice(&v.im.to_bits().to_le_bytes());
    }
}

/// Quantizes `v` onto the symmetric 16-bit grid for `scale`.
fn q16_quant(v: f64, scale: f64) -> i16 {
    if scale == 0.0 {
        return 0;
    }
    // The scale is derived from the column max, so the clamp only guards
    // rounding at the extremes.
    (v / scale).round().clamp(-Q16_MAX, Q16_MAX) as i16
}

fn encode_modes(out: &mut Vec<u8>, modes: &CMat, tier: QuantTier) {
    let (rows, k) = (modes.rows(), modes.cols());
    match tier {
        QuantTier::F64 => {
            // Column-major XOR-delta of the raw bit patterns: adjacent
            // rows of one mode are spatially smooth, so deltas share
            // leading bytes (and compress further under any outer
            // compressor) while staying exactly invertible.
            for j in 0..k {
                let (mut prev_re, mut prev_im) = (0u64, 0u64);
                for i in 0..rows {
                    let v = modes[(i, j)];
                    let (re, im) = (v.re.to_bits(), v.im.to_bits());
                    out.extend_from_slice(&(re ^ prev_re).to_le_bytes());
                    out.extend_from_slice(&(im ^ prev_im).to_le_bytes());
                    prev_re = re;
                    prev_im = im;
                }
            }
        }
        QuantTier::F32 => {
            for j in 0..k {
                let (mut prev_re, mut prev_im) = (0u32, 0u32);
                for i in 0..rows {
                    let v = modes[(i, j)];
                    let (re, im) = ((v.re as f32).to_bits(), (v.im as f32).to_bits());
                    out.extend_from_slice(&(re ^ prev_re).to_le_bytes());
                    out.extend_from_slice(&(im ^ prev_im).to_le_bytes());
                    prev_re = re;
                    prev_im = im;
                }
            }
        }
        QuantTier::Q16 => {
            for j in 0..k {
                let mut max_abs = 0.0f64;
                for i in 0..rows {
                    let v = modes[(i, j)];
                    max_abs = max_abs.max(v.re.abs()).max(v.im.abs());
                }
                let scale = if max_abs == 0.0 {
                    0.0
                } else {
                    max_abs / Q16_MAX
                };
                out.extend_from_slice(&scale.to_bits().to_le_bytes());
                let (mut prev_re, mut prev_im) = (0i16, 0i16);
                for i in 0..rows {
                    let v = modes[(i, j)];
                    let (re, im) = (q16_quant(v.re, scale), q16_quant(v.im, scale));
                    // Wrapping deltas are lossless in the u16 ring, so the
                    // quantized grid round-trips exactly.
                    let dre = (re as u16).wrapping_sub(prev_re as u16);
                    let dim = (im as u16).wrapping_sub(prev_im as u16);
                    out.extend_from_slice(&dre.to_le_bytes());
                    out.extend_from_slice(&dim.to_le_bytes());
                    prev_re = re;
                    prev_im = im;
                }
            }
        }
    }
}

fn encode_node(node: &ModeSet, tier: QuantTier) -> Vec<u8> {
    let (rows, k) = (node.modes.rows(), node.modes.cols());
    let mut out = Vec::with_capacity(NODE_PREFIX + 3 * k * 16 + tier.modes_bytes(rows, k));
    for v in [
        node.level as u64,
        node.start as u64,
        node.window as u64,
        node.step as u64,
        node.row_offset as u64,
    ] {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out.extend_from_slice(&(rows as u32).to_le_bytes());
    out.extend_from_slice(&(k as u32).to_le_bytes());
    // Eigenvalues and amplitudes stay exact at every tier: replay scales
    // them through exp(ω t), which would amplify any quantization error
    // across the window.
    push_c64_exact(&mut out, &node.lambdas);
    push_c64_exact(&mut out, &node.omegas);
    push_c64_exact(&mut out, &node.amplitudes);
    encode_modes(&mut out, &node.modes, tier);
    out
}

fn c64_vec_at(payload: &[u8], at: usize, k: usize) -> Option<Vec<c64>> {
    let mut vs = Vec::with_capacity(k);
    for n in 0..k {
        let re = f64::from_bits(u64_at(payload, at + 16 * n)?);
        let im = f64::from_bits(u64_at(payload, at + 16 * n + 8)?);
        vs.push(c64::new(re, im));
    }
    Some(vs)
}

fn u16_at(bytes: &[u8], at: usize) -> Option<u16> {
    bytes
        .get(at..at + 2)
        .and_then(|b| b.try_into().ok())
        .map(u16::from_le_bytes)
}

fn decode_modes(payload: &[u8], at: usize, rows: usize, k: usize, tier: QuantTier) -> Option<CMat> {
    let mut cells = vec![c64::new(0.0, 0.0); rows * k];
    let mut at = at;
    match tier {
        QuantTier::F64 => {
            for j in 0..k {
                let (mut re, mut im) = (0u64, 0u64);
                for i in 0..rows {
                    re ^= u64_at(payload, at)?;
                    im ^= u64_at(payload, at + 8)?;
                    at += 16;
                    cells[i * k + j] = c64::new(f64::from_bits(re), f64::from_bits(im));
                }
            }
        }
        QuantTier::F32 => {
            for j in 0..k {
                let (mut re, mut im) = (0u32, 0u32);
                for i in 0..rows {
                    re ^= u32_at(payload, at)?;
                    im ^= u32_at(payload, at + 4)?;
                    at += 8;
                    cells[i * k + j] =
                        c64::new(f32::from_bits(re) as f64, f32::from_bits(im) as f64);
                }
            }
        }
        QuantTier::Q16 => {
            for j in 0..k {
                let scale = f64::from_bits(u64_at(payload, at)?);
                at += 8;
                let (mut re, mut im) = (0u16, 0u16);
                for i in 0..rows {
                    re = re.wrapping_add(u16_at(payload, at)?);
                    im = im.wrapping_add(u16_at(payload, at + 2)?);
                    at += 4;
                    cells[i * k + j] =
                        c64::new((re as i16) as f64 * scale, (im as i16) as f64 * scale);
                }
            }
        }
    }
    Some(CMat::from_fn(rows, k, |i, j| cells[i * k + j]))
}

fn decode_node(payload: &[u8], tier: QuantTier) -> Result<ModeSet, ArchiveError> {
    let truncated = || ArchiveError::Codec("truncated node block".into());
    let level = u64_at(payload, 0).ok_or_else(truncated)? as usize;
    let start = u64_at(payload, 8).ok_or_else(truncated)? as usize;
    let window = u64_at(payload, 16).ok_or_else(truncated)? as usize;
    let step = u64_at(payload, 24).ok_or_else(truncated)? as usize;
    let row_offset = u64_at(payload, 32).ok_or_else(truncated)? as usize;
    let rows = u32_at(payload, 40).ok_or_else(truncated)? as usize;
    let k = u32_at(payload, 44).ok_or_else(truncated)? as usize;
    let expected = k
        .checked_mul(48)
        .and_then(|e| e.checked_add(tier.modes_bytes(rows, k)))
        .and_then(|e| e.checked_add(NODE_PREFIX))
        .ok_or_else(|| ArchiveError::Codec("node block shape overflows".into()))?;
    if payload.len() != expected {
        return Err(ArchiveError::Codec(format!(
            "node block is {} bytes, shape {rows}×{k} at tier {} needs {expected}",
            payload.len(),
            tier.as_str()
        )));
    }
    let lambdas = c64_vec_at(payload, NODE_PREFIX, k).ok_or_else(truncated)?;
    let omegas = c64_vec_at(payload, NODE_PREFIX + 16 * k, k).ok_or_else(truncated)?;
    let amplitudes = c64_vec_at(payload, NODE_PREFIX + 32 * k, k).ok_or_else(truncated)?;
    let modes = decode_modes(payload, NODE_PREFIX + 48 * k, rows, k, tier).ok_or_else(truncated)?;
    Ok(ModeSet {
        level,
        start,
        window,
        step,
        row_offset,
        modes,
        lambdas,
        omegas,
        amplitudes,
    })
}

// ---------------------------------------------------------------------------
// Writing
// ---------------------------------------------------------------------------

/// Shape and size summary of an archive (returned by writes, carried by
/// [`ArchiveReader`]).
#[derive(Clone, Copy, Debug, serde::Serialize, serde::Deserialize)]
pub struct ArchiveInfo {
    /// The quantization tier the mode matrices were stored at.
    pub tier: QuantTier,
    /// Tree nodes (= node blocks) in the archive.
    pub n_nodes: usize,
    /// Sensor rows the archived model covers.
    pub n_rows: usize,
    /// Snapshots the archived model covers.
    pub n_steps: usize,
    /// Snapshot spacing in seconds.
    pub dt: f64,
    /// Total archive size in bytes.
    pub bytes: u64,
}

/// Serialises a fitted model into the archive byte image. Infallible in
/// memory; pair with [`write_archive`] for the durable on-disk form.
pub fn archive_bytes(model: &IMrDmd, tier: QuantTier) -> (Vec<u8>, ArchiveInfo) {
    let dt = model.config().mr.dt;
    let mut out =
        storage::format_text_header(ARCHIVE_MAGIC, ARCHIVE_VERSION, &[tier.as_str()]).into_bytes();
    let nodes: Vec<&ModeSet> = model.nodes().collect();
    let mut meta = Vec::with_capacity(32);
    meta.extend_from_slice(&tier.code().to_le_bytes());
    meta.extend_from_slice(&(nodes.len() as u32).to_le_bytes());
    meta.extend_from_slice(&(model.n_rows() as u64).to_le_bytes());
    meta.extend_from_slice(&(model.n_steps() as u64).to_le_bytes());
    meta.extend_from_slice(&dt.to_bits().to_le_bytes());
    storage::append_frame(&mut out, &meta);
    // Blocks are written in tree-iteration order; replay preserves file
    // order, which is what keeps f64 replay bitwise.
    let mut entries = Vec::with_capacity(nodes.len());
    for node in &nodes {
        let payload = encode_node(node, tier);
        let offset = out.len() as u64;
        entries.push((
            node.start as u64,
            node.window as u64,
            offset,
            payload.len() as u32,
            node.level as u32,
        ));
        storage::append_frame(&mut out, &payload);
    }
    let mut index = Vec::with_capacity(4 + 32 * entries.len());
    index.extend_from_slice(&(entries.len() as u32).to_le_bytes());
    for (start, window, offset, len, level) in &entries {
        index.extend_from_slice(&start.to_le_bytes());
        index.extend_from_slice(&window.to_le_bytes());
        index.extend_from_slice(&offset.to_le_bytes());
        index.extend_from_slice(&len.to_le_bytes());
        index.extend_from_slice(&level.to_le_bytes());
    }
    let index_offset = out.len() as u64;
    storage::append_frame(&mut out, &index);
    let offset_bytes = index_offset.to_le_bytes();
    out.extend_from_slice(&offset_bytes);
    out.extend_from_slice(&storage::crc32(&offset_bytes).to_le_bytes());
    out.extend_from_slice(TRAILER_MAGIC);
    let info = ArchiveInfo {
        tier,
        n_nodes: nodes.len(),
        n_rows: model.n_rows(),
        n_steps: model.n_steps(),
        dt,
        bytes: out.len() as u64,
    };
    // Recorded here rather than in `write_archive` so served archives
    // (encoded straight onto the wire, never touching disk) count too.
    crate::obs::ARCHIVE_SAVES.inc();
    crate::obs::ARCHIVE_BYTES.add(info.bytes);
    (out, info)
}

/// Writes `model` as an archive at `path` — atomically (temp sibling +
/// rename + fsync), like every other persistent artefact.
pub fn write_archive(
    model: &IMrDmd,
    path: &Path,
    tier: QuantTier,
) -> Result<ArchiveInfo, ArchiveError> {
    let _span = crate::obs::ARCHIVE_NS.span();
    let (bytes, info) = archive_bytes(model, tier);
    storage::atomic_write(path, &bytes, true)?;
    Ok(info)
}

// ---------------------------------------------------------------------------
// Reading
// ---------------------------------------------------------------------------

/// One index entry: where a node block lives and what time window it
/// covers.
#[derive(Clone, Copy, Debug)]
pub struct IndexEntry {
    /// Absolute snapshot index the node's window starts at.
    pub start: u64,
    /// Window length in snapshots.
    pub window: u64,
    /// Absolute byte offset of the node's frame head.
    pub offset: u64,
    /// Node payload length in bytes.
    pub len: u32,
    /// Tree level of the node.
    pub level: u32,
}

impl IndexEntry {
    /// The node-admission rule reconstruction uses: does this node's
    /// window overlap `[t0, t1)`?
    pub fn admits(&self, t0: usize, t1: usize) -> bool {
        (self.start as usize) < t1 && self.start as usize + self.window as usize > t0
    }
}

/// An open archive: header, metadata, and index are resident; node
/// blocks are streamed from disk per replay.
#[derive(Debug)]
pub struct ArchiveReader {
    file: std::fs::File,
    info: ArchiveInfo,
    index: Vec<IndexEntry>,
    blocks_read: u64,
}

impl ArchiveReader {
    /// Opens an archive: validates the header line and trailer, then
    /// loads the index and metadata blocks (but no node blocks).
    pub fn open(path: &Path) -> Result<ArchiveReader, ArchiveError> {
        let mut file = std::fs::File::open(path)?;
        let total = file.metadata()?.len();
        // Header line.
        let mut head = [0u8; 64];
        let n = file.read(&mut head)?;
        let header_cap = 2 + ARCHIVE_MAGIC.len() + 8 + 8;
        let line_end = head[..n.min(header_cap)]
            .iter()
            .position(|&b| b == b'\n')
            .ok_or_else(|| ArchiveError::BadHeader("no header line".into()))?;
        let line = std::str::from_utf8(&head[..line_end])
            .map_err(|_| ArchiveError::BadHeader("header not valid UTF-8".into()))?;
        storage::parse_text_header(line, ARCHIVE_MAGIC, ARCHIVE_VERSION).map_err(|e| match e {
            HeaderError::BadMagic => {
                ArchiveError::BadHeader(format!("missing `{ARCHIVE_MAGIC}` magic"))
            }
            HeaderError::NoVersion => ArchiveError::BadHeader("missing version token".into()),
            HeaderError::Unsupported(v) => ArchiveError::BadHeader(format!(
                "archive format v{v} is newer than supported v{ARCHIVE_VERSION}"
            )),
        })?;
        let header_end = (line_end + 1) as u64;
        // Trailer → index offset.
        if total < header_end + TRAILER_LEN as u64 {
            return Err(ArchiveError::BadHeader("file too short for trailer".into()));
        }
        let mut trailer = [0u8; TRAILER_LEN];
        file.seek(std::io::SeekFrom::Start(total - TRAILER_LEN as u64))?;
        file.read_exact(&mut trailer)?;
        if &trailer[12..20] != TRAILER_MAGIC {
            return Err(ArchiveError::BadHeader("missing trailer magic".into()));
        }
        let offset_bytes = &trailer[..8];
        let trailer_crc =
            u32_at(&trailer, 8).ok_or_else(|| ArchiveError::BadHeader("short trailer".into()))?;
        if storage::crc32(offset_bytes) != trailer_crc {
            return Err(ArchiveError::BadHeader("trailer checksum mismatch".into()));
        }
        let index_offset =
            u64_at(&trailer, 0).ok_or_else(|| ArchiveError::BadHeader("short trailer".into()))?;
        if index_offset < header_end || index_offset >= total {
            return Err(ArchiveError::BadHeader(
                "trailer points outside the file".into(),
            ));
        }
        // Metadata block (always the first block, right after the header).
        let meta = storage::read_block_at(&mut file, header_end)?;
        let bad_meta = || ArchiveError::Codec("truncated metadata block".into());
        let tier_code = u32_at(&meta, 0).ok_or_else(bad_meta)?;
        let tier = QuantTier::from_code(tier_code)
            .ok_or_else(|| ArchiveError::Codec(format!("unknown quantization tier {tier_code}")))?;
        let n_nodes = u32_at(&meta, 4).ok_or_else(bad_meta)? as usize;
        let n_rows = u64_at(&meta, 8).ok_or_else(bad_meta)? as usize;
        let n_steps = u64_at(&meta, 16).ok_or_else(bad_meta)? as usize;
        let dt = f64::from_bits(u64_at(&meta, 24).ok_or_else(bad_meta)?);
        // Index block.
        let raw = storage::read_block_at(&mut file, index_offset)?;
        let bad_index = || ArchiveError::Codec("truncated index block".into());
        let count = u32_at(&raw, 0).ok_or_else(bad_index)? as usize;
        if count != n_nodes || raw.len() != 4 + 32 * count {
            return Err(ArchiveError::Codec(format!(
                "index lists {count} blocks, metadata promises {n_nodes}"
            )));
        }
        let mut index = Vec::with_capacity(count);
        for e in 0..count {
            let at = 4 + 32 * e;
            index.push(IndexEntry {
                start: u64_at(&raw, at).ok_or_else(bad_index)?,
                window: u64_at(&raw, at + 8).ok_or_else(bad_index)?,
                offset: u64_at(&raw, at + 16).ok_or_else(bad_index)?,
                len: u32_at(&raw, at + 24).ok_or_else(bad_index)?,
                level: u32_at(&raw, at + 28).ok_or_else(bad_index)?,
            });
        }
        Ok(ArchiveReader {
            file,
            info: ArchiveInfo {
                tier,
                n_nodes,
                n_rows,
                n_steps,
                dt,
                bytes: total,
            },
            index,
            blocks_read: 0,
        })
    }

    /// Shape and tier metadata of the open archive.
    pub fn info(&self) -> &ArchiveInfo {
        &self.info
    }

    /// The seekable block index, in file (= tree-iteration) order.
    pub fn index(&self) -> &[IndexEntry] {
        &self.index
    }

    /// Node blocks streamed from disk by replays on this reader so far.
    pub fn blocks_read(&self) -> u64 {
        self.blocks_read
    }

    /// Reconstructs snapshots `[t0, t1)` by streaming only the node
    /// blocks whose windows overlap the range. At the f64 tier the result
    /// is bitwise-identical to [`IMrDmd::reconstruct_range`] on the model
    /// that was archived; at lossy tiers it is within
    /// [`QuantTier::rel_error_bound`] of the f64 replay.
    pub fn replay(&mut self, t0: usize, t1: usize) -> Result<Mat, ArchiveError> {
        let _span = crate::obs::ARCHIVE_NS.span();
        if t0 > t1 || t1 > self.info.n_steps {
            return Err(ArchiveError::BadRange {
                t0,
                t1,
                n_steps: self.info.n_steps,
            });
        }
        let admitted: Vec<IndexEntry> = self
            .index
            .iter()
            .filter(|e| e.admits(t0, t1))
            .copied()
            .collect();
        let mut nodes = Vec::with_capacity(admitted.len());
        for entry in &admitted {
            let payload = storage::read_block_at(&mut self.file, entry.offset)?;
            nodes.push(decode_node(&payload, self.info.tier)?);
            self.blocks_read += 1;
            crate::obs::ARCHIVE_BLOCKS_READ.inc();
        }
        let refs: Vec<&ModeSet> = nodes.iter().collect();
        crate::obs::ARCHIVE_REPLAYS.inc();
        Ok(reconstruct_nodes(
            &refs,
            self.info.n_rows,
            t0,
            t1,
            self.info.dt,
            &WorkerPool::new(0),
        ))
    }

    /// Replays the whole archived timeline.
    pub fn replay_all(&mut self) -> Result<Mat, ArchiveError> {
        self.replay(0, self.info.n_steps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::imrdmd::{IMrDmd, IMrDmdConfig};
    use std::path::PathBuf;

    fn scratch(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("imrdmd-archive-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("mkdir");
        dir
    }

    fn fitted(p: usize, t: usize) -> IMrDmd {
        let data = Mat::from_fn(p, t, |i, j| {
            let x = i as f64 / p as f64;
            let tt = j as f64;
            (0.01 * tt + 2.0 * x).sin() + 0.3 * (0.08 * tt + 5.0 * x).cos()
        });
        IMrDmd::fit(&data, &IMrDmdConfig::default())
    }

    #[test]
    fn f64_tier_replay_is_bitwise() {
        let dir = scratch("bitwise");
        let model = fitted(24, 512);
        let path = dir.join("model.arch");
        let info = write_archive(&model, &path, QuantTier::F64).expect("write");
        assert_eq!(info.n_steps, 512);
        let mut reader = ArchiveReader::open(&path).expect("open");
        let full = reader.replay_all().expect("replay");
        assert_eq!(full.as_slice(), model.reconstruct().as_slice());
        let range = reader.replay(100, 300).expect("replay");
        assert_eq!(
            range.as_slice(),
            model.reconstruct_range(100, 300).as_slice(),
            "range replay must be bitwise at the f64 tier"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn range_replay_streams_only_admitting_blocks() {
        let dir = scratch("seek");
        let model = fitted(16, 1024);
        let path = dir.join("model.arch");
        write_archive(&model, &path, QuantTier::F64).expect("write");
        let mut reader = ArchiveReader::open(&path).expect("open");
        let n_nodes = reader.info().n_nodes;
        reader.replay(0, 32).expect("replay");
        assert!(
            (reader.blocks_read() as usize) < n_nodes,
            "narrow range must not stream all {n_nodes} blocks"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn lossy_tiers_stay_within_their_bounds() {
        let dir = scratch("lossy");
        let model = fitted(24, 512);
        let exact = model.reconstruct();
        let norm = exact
            .as_slice()
            .iter()
            .fold(0.0f64, |m, v| m.max(v.abs()))
            .max(1e-300);
        for tier in [QuantTier::F32, QuantTier::Q16] {
            let path = dir.join(format!("model.{tier}.arch"));
            write_archive(&model, &path, tier).expect("write");
            let mut reader = ArchiveReader::open(&path).expect("open");
            let approx = reader.replay_all().expect("replay");
            let err = exact
                .as_slice()
                .iter()
                .zip(approx.as_slice())
                .fold(0.0f64, |m, (a, b)| m.max((a - b).abs()))
                / norm;
            assert!(
                err <= tier.rel_error_bound(),
                "tier {tier}: rel error {err:e} exceeds bound {:e}",
                tier.rel_error_bound()
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_and_bitflipped_blocks_are_typed_errors() {
        let dir = scratch("damage");
        let model = fitted(16, 256);
        let path = dir.join("model.arch");
        write_archive(&model, &path, QuantTier::Q16).expect("write");
        let bytes = std::fs::read(&path).expect("read");

        // Bit-flip inside the first node block's payload.
        let reader = ArchiveReader::open(&path).expect("open");
        let at = reader.index()[0].offset as usize + storage::FRAME_HEAD + 10;
        drop(reader);
        let mut flipped = bytes.clone();
        flipped[at] ^= 0x04;
        std::fs::write(&path, &flipped).expect("write");
        let mut reader = ArchiveReader::open(&path).expect("open survives: index intact");
        assert!(matches!(
            reader.replay_all(),
            Err(ArchiveError::Block(BlockError::Checksum { .. }))
        ));

        // Truncate mid-file: the trailer is gone, open must fail cleanly.
        std::fs::write(&path, &bytes[..bytes.len() / 2]).expect("write");
        assert!(matches!(
            ArchiveReader::open(&path),
            Err(ArchiveError::BadHeader(_) | ArchiveError::Block(_))
        ));

        // Not an archive at all.
        std::fs::write(&path, b"IMRDMD-CKPT v1 2 abcd1234\n{}").expect("write");
        assert!(matches!(
            ArchiveReader::open(&path),
            Err(ArchiveError::BadHeader(_))
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bad_range_is_rejected() {
        let dir = scratch("range");
        let model = fitted(8, 128);
        let path = dir.join("model.arch");
        write_archive(&model, &path, QuantTier::F64).expect("write");
        let mut reader = ArchiveReader::open(&path).expect("open");
        assert!(matches!(
            reader.replay(0, 129),
            Err(ArchiveError::BadRange { .. })
        ));
        assert!(matches!(
            reader.replay(64, 32),
            Err(ArchiveError::BadRange { .. })
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn q16_is_much_smaller_than_the_checkpoint_form() {
        let model = fitted(48, 2048);
        let (f64_bytes, _) = archive_bytes(&model, QuantTier::F64);
        let (q16_bytes, _) = archive_bytes(&model, QuantTier::Q16);
        assert!(
            (q16_bytes.len() as f64) < 0.4 * f64_bytes.len() as f64,
            "q16 {} vs f64 {}",
            q16_bytes.len(),
            f64_bytes.len()
        );
    }
}
