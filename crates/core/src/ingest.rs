//! Ingest guard: gap/NaN repair in front of the streaming decomposition.
//!
//! Real environment logs have dropped samples, NaN gaps, and dead sensors —
//! a single non-finite value silently poisons the incremental SVD (every
//! Brand update after it is garbage, with no error). The [`IngestGuard`]
//! sits between the telemetry source and
//! [`IMrDmd::try_partial_fit`](crate::imrdmd::IMrDmd::try_partial_fit),
//! scanning each batch and repairing gaps under a configurable
//! [`GapPolicy`] before any value reaches the decomposition. The guard is
//! stateful: it carries each sensor's last finite reading across batches,
//! so a gap at a batch boundary repairs exactly like one in the middle.

use crate::error::CoreError;
use hpc_linalg::Mat;
use serde::{Deserialize, Serialize};

/// How the guard repairs non-finite (NaN/±Inf) values.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum GapPolicy {
    /// Refuse the batch: any non-finite value is an error. Use when an
    /// upstream repair stage is supposed to have run already.
    Reject,
    /// Last-value hold: replace each gap with the sensor's most recent
    /// finite reading (leading gaps backfill from the first finite reading).
    HoldLast,
    /// Per-sensor linear interpolation between the finite readings that
    /// bracket the gap; edge gaps fall back to a hold.
    Interpolate,
    /// Mask the whole sensor for this batch: any row containing a gap is
    /// replaced by a constant hold of its last finite reading, so a flaky
    /// sensor contributes no spurious dynamics at all.
    MaskRow,
}

impl GapPolicy {
    /// Parses the CLI spelling (`reject`, `hold`, `interpolate`, `mask`).
    pub fn parse(s: &str) -> Option<GapPolicy> {
        match s {
            "reject" => Some(GapPolicy::Reject),
            "hold" | "hold-last" => Some(GapPolicy::HoldLast),
            "interpolate" | "interp" => Some(GapPolicy::Interpolate),
            "mask" | "mask-row" => Some(GapPolicy::MaskRow),
            _ => None,
        }
    }
}

impl std::fmt::Display for GapPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            GapPolicy::Reject => "reject",
            GapPolicy::HoldLast => "hold",
            GapPolicy::Interpolate => "interpolate",
            GapPolicy::MaskRow => "mask",
        };
        f.write_str(s)
    }
}

/// What one [`IngestGuard::repair`] pass did to a batch.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct RepairReport {
    /// Non-finite values found in the batch.
    pub gaps: usize,
    /// Values rewritten (equals `gaps` under hold/interpolate; the full row
    /// width per masked row under [`GapPolicy::MaskRow`]).
    pub repaired: usize,
    /// Rows fully masked this batch ([`GapPolicy::MaskRow`] only).
    pub masked_rows: Vec<usize>,
    /// Rows repaired with `0.0` because no finite reading has ever been
    /// observed for them (sensor dead since the start of the stream).
    pub unseeded_rows: Vec<usize>,
}

impl RepairReport {
    /// True if the batch needed no repair.
    pub fn is_clean(&self) -> bool {
        self.gaps == 0
    }

    /// Folds another batch's report into this one (stream-level totals).
    /// Row lists are deduplicated and kept sorted.
    pub fn merge(&mut self, other: &RepairReport) {
        self.gaps += other.gaps;
        self.repaired += other.repaired;
        for list in [
            (&mut self.masked_rows, &other.masked_rows),
            (&mut self.unseeded_rows, &other.unseeded_rows),
        ] {
            let (mine, theirs) = list;
            mine.extend_from_slice(theirs);
            mine.sort_unstable();
            mine.dedup();
        }
    }
}

/// Stateful gap repairer for one telemetry stream.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct IngestGuard {
    policy: GapPolicy,
    /// Last finite reading seen per sensor, carried across batches.
    last_good: Vec<Option<f64>>,
}

impl IngestGuard {
    /// A guard for a `n_rows`-sensor stream under `policy`.
    pub fn new(policy: GapPolicy, n_rows: usize) -> IngestGuard {
        IngestGuard {
            policy,
            last_good: vec![None; n_rows],
        }
    }

    /// The active policy.
    pub fn policy(&self) -> GapPolicy {
        self.policy
    }

    /// Sensors the guard tracks.
    pub fn n_rows(&self) -> usize {
        self.last_good.len()
    }

    /// Widens the guard when sensors are appended to the stream
    /// (see [`IMrDmd::add_series`](crate::imrdmd::IMrDmd::add_series)).
    pub fn extend_rows(&mut self, extra: usize) {
        let n = self.last_good.len() + extra;
        self.last_good.resize(n, None);
    }

    /// Scans `batch` and repairs gaps under the configured policy.
    ///
    /// Returns `Ok((None, report))` when the batch was already clean (no
    /// copy is made) or `Ok((Some(clean), report))` with the repaired copy.
    /// Under [`GapPolicy::Reject`] the first gap aborts with
    /// [`CoreError::NonFinite`].
    pub fn repair(&mut self, batch: &Mat) -> Result<(Option<Mat>, RepairReport), CoreError> {
        if batch.rows() != self.last_good.len() {
            return Err(CoreError::ShapeMismatch {
                expected_rows: self.last_good.len(),
                got_rows: batch.rows(),
            });
        }
        let mut report = RepairReport::default();
        let mut dirty_rows: Vec<usize> = Vec::new();
        for i in 0..batch.rows() {
            let mut n = 0usize;
            let mut first_col = usize::MAX;
            for (j, &v) in batch.row(i).iter().enumerate() {
                if !v.is_finite() {
                    n += 1;
                    first_col = first_col.min(j);
                }
            }
            if n > 0 {
                if self.policy == GapPolicy::Reject {
                    return Err(CoreError::NonFinite {
                        row: i,
                        col: first_col,
                    });
                }
                report.gaps += n;
                dirty_rows.push(i);
            }
        }
        if dirty_rows.is_empty() {
            self.note_clean(batch);
            return Ok((None, report));
        }
        let _span = crate::obs::INGEST_NS.span();
        let mut clean = batch.clone();
        for &i in &dirty_rows {
            match self.policy {
                GapPolicy::Reject => unreachable!("rejected above"),
                GapPolicy::HoldLast => self.hold_row(&mut clean, i, &mut report),
                GapPolicy::Interpolate => self.interpolate_row(&mut clean, i, &mut report),
                GapPolicy::MaskRow => self.mask_row(&mut clean, i, &mut report),
            }
        }
        self.note_clean(&clean);
        crate::obs::INGEST_GAPS.add(report.gaps as u64);
        crate::obs::INGEST_REPAIRED_CELLS.add(report.repaired as u64);
        crate::obs::INGEST_MASKED_ROWS.add(report.masked_rows.len() as u64);
        Ok((Some(clean), report))
    }

    /// Records the (finite) trailing values of a sanitised batch.
    fn note_clean(&mut self, batch: &Mat) {
        if batch.cols() == 0 {
            return;
        }
        let last = batch.cols() - 1;
        for (i, slot) in self.last_good.iter_mut().enumerate() {
            let v = batch[(i, last)];
            if v.is_finite() {
                *slot = Some(v);
            }
        }
    }

    /// Seeds a row that has no finite reading anywhere: previous batches'
    /// hold if available, else 0.0 (recorded as unseeded).
    fn seed(&self, i: usize, report: &mut RepairReport) -> f64 {
        match self.last_good[i] {
            Some(v) => v,
            None => {
                if !report.unseeded_rows.contains(&i) {
                    report.unseeded_rows.push(i);
                }
                0.0
            }
        }
    }

    fn hold_row(&self, m: &mut Mat, i: usize, report: &mut RepairReport) {
        let cols = m.cols();
        // Backfill value for a leading gap: first finite in the batch, else
        // the carried hold.
        let mut hold = match m.row(i).iter().copied().find(|v| v.is_finite()) {
            Some(v) => match self.last_good[i] {
                Some(prev) => prev,
                None => v,
            },
            None => self.seed(i, report),
        };
        for j in 0..cols {
            let v = m[(i, j)];
            if v.is_finite() {
                hold = v;
            } else {
                m[(i, j)] = hold;
                report.repaired += 1;
            }
        }
    }

    fn interpolate_row(&self, m: &mut Mat, i: usize, report: &mut RepairReport) {
        let cols = m.cols();
        let anchors: Vec<usize> = (0..cols).filter(|&j| m[(i, j)].is_finite()).collect();
        if anchors.is_empty() {
            let v = self.seed(i, report);
            for j in 0..cols {
                m[(i, j)] = v;
                report.repaired += 1;
            }
            return;
        }
        // Leading edge: interpolate from the carried hold (one step before
        // the batch) when available, else hold the first anchor backwards.
        let first = anchors[0];
        if first > 0 {
            let right = m[(i, first)];
            match self.last_good[i] {
                Some(left) => {
                    let span = (first + 1) as f64;
                    for j in 0..first {
                        let w = (j + 1) as f64 / span;
                        m[(i, j)] = left + (right - left) * w;
                        report.repaired += 1;
                    }
                }
                None => {
                    for j in 0..first {
                        m[(i, j)] = right;
                        report.repaired += 1;
                    }
                }
            }
        }
        // Interior gaps between consecutive anchors.
        for w in anchors.windows(2) {
            let (a, b) = (w[0], w[1]);
            if b > a + 1 {
                let (va, vb) = (m[(i, a)], m[(i, b)]);
                let span = (b - a) as f64;
                for j in a + 1..b {
                    let t = (j - a) as f64 / span;
                    m[(i, j)] = va + (vb - va) * t;
                    report.repaired += 1;
                }
            }
        }
        // Trailing edge: hold the last anchor.
        // Invariant: the empty-anchors case returned early above.
        #[allow(clippy::expect_used)]
        let last = *anchors.last().expect("nonempty");
        for j in last + 1..cols {
            m[(i, j)] = m[(i, last)];
            report.repaired += 1;
        }
    }

    fn mask_row(&self, m: &mut Mat, i: usize, report: &mut RepairReport) {
        let v = self.seed(i, report);
        for j in 0..m.cols() {
            m[(i, j)] = v;
        }
        report.repaired += m.cols();
        report.masked_rows.push(i);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn batch(rows: &[&[f64]]) -> Mat {
        Mat::from_rows(&rows.iter().map(|r| r.to_vec()).collect::<Vec<_>>())
    }

    #[test]
    fn clean_batch_is_untouched_and_uncopied() {
        let mut g = IngestGuard::new(GapPolicy::HoldLast, 2);
        let b = batch(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let (repaired, rep) = g.repair(&b).unwrap();
        assert!(repaired.is_none());
        assert!(rep.is_clean());
    }

    #[test]
    fn reject_reports_first_offender() {
        let mut g = IngestGuard::new(GapPolicy::Reject, 2);
        let b = batch(&[&[1.0, 2.0, 3.0], &[3.0, f64::NAN, f64::INFINITY]]);
        match g.repair(&b) {
            Err(CoreError::NonFinite { row, col }) => {
                assert_eq!((row, col), (1, 1));
            }
            other => panic!("expected NonFinite, got {other:?}"),
        }
    }

    #[test]
    fn shape_mismatch_is_an_error() {
        let mut g = IngestGuard::new(GapPolicy::HoldLast, 3);
        let b = batch(&[&[1.0], &[2.0]]);
        assert!(matches!(
            g.repair(&b),
            Err(CoreError::ShapeMismatch {
                expected_rows: 3,
                got_rows: 2
            })
        ));
    }

    #[test]
    fn hold_last_carries_across_batches() {
        let mut g = IngestGuard::new(GapPolicy::HoldLast, 1);
        g.repair(&batch(&[&[5.0, 6.0]])).unwrap();
        let (r, rep) = g.repair(&batch(&[&[f64::NAN, f64::NAN, 7.0]])).unwrap();
        let r = r.unwrap();
        // Leading gap at a batch boundary holds the previous batch's value.
        assert_eq!(r.row(0), &[6.0, 6.0, 7.0]);
        assert_eq!(rep.repaired, 2);
    }

    #[test]
    fn hold_last_backfills_leading_gap_without_history() {
        let mut g = IngestGuard::new(GapPolicy::HoldLast, 1);
        let (r, _) = g.repair(&batch(&[&[f64::NAN, 3.0, f64::NAN]])).unwrap();
        assert_eq!(r.unwrap().row(0), &[3.0, 3.0, 3.0]);
    }

    #[test]
    fn interpolation_is_linear_between_anchors() {
        let mut g = IngestGuard::new(GapPolicy::Interpolate, 1);
        let (r, rep) = g
            .repair(&batch(&[&[0.0, f64::NAN, f64::NAN, 3.0, f64::NAN]]))
            .unwrap();
        let r = r.unwrap();
        assert_eq!(r.row(0), &[0.0, 1.0, 2.0, 3.0, 3.0]);
        assert_eq!(rep.gaps, 3);
        assert_eq!(rep.repaired, 3);
    }

    #[test]
    fn interpolation_uses_carried_value_as_left_anchor() {
        let mut g = IngestGuard::new(GapPolicy::Interpolate, 1);
        g.repair(&batch(&[&[2.0]])).unwrap();
        let (r, _) = g.repair(&batch(&[&[f64::NAN, 8.0]])).unwrap();
        // The carried 2.0 sits one step before the batch: the gap is midway.
        assert_eq!(r.unwrap().row(0), &[5.0, 8.0]);
    }

    #[test]
    fn mask_row_flattens_flaky_sensor_only() {
        let mut g = IngestGuard::new(GapPolicy::MaskRow, 2);
        g.repair(&batch(&[&[1.0], &[10.0]])).unwrap();
        let (r, rep) = g.repair(&batch(&[&[2.0, 3.0], &[f64::NAN, 11.0]])).unwrap();
        let r = r.unwrap();
        assert_eq!(r.row(0), &[2.0, 3.0]);
        assert_eq!(r.row(1), &[10.0, 10.0]);
        assert_eq!(rep.masked_rows, vec![1]);
    }

    #[test]
    fn dead_from_start_row_seeds_zero_and_reports() {
        let mut g = IngestGuard::new(GapPolicy::HoldLast, 1);
        let (r, rep) = g.repair(&batch(&[&[f64::NAN, f64::NAN]])).unwrap();
        assert_eq!(r.unwrap().row(0), &[0.0, 0.0]);
        assert_eq!(rep.unseeded_rows, vec![0]);
    }

    #[test]
    fn policy_parse_roundtrip() {
        for p in [
            GapPolicy::Reject,
            GapPolicy::HoldLast,
            GapPolicy::Interpolate,
            GapPolicy::MaskRow,
        ] {
            assert_eq!(GapPolicy::parse(&p.to_string()), Some(p));
        }
        assert_eq!(GapPolicy::parse("bogus"), None);
    }
}
