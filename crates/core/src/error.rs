//! Error types of the streaming ingest and recovery paths.
//!
//! Production telemetry is never clean: collectors restart, sensors die,
//! and archived logs carry NaN gaps. The streaming API therefore exposes a
//! fallible surface ([`crate::imrdmd::IMrDmd::try_partial_fit`],
//! [`crate::imrdmd::AsyncRefit::try_take`], [`crate::checkpoint`]) that
//! reports these conditions as values instead of panicking mid-stream.

use crate::checkpoint::CheckpointError;
use hpc_linalg::LinAlgError;

/// Error surfaced by the fallible streaming API.
#[derive(Debug)]
pub enum CoreError {
    /// A configuration value is out of its documented domain (e.g. an
    /// [`Energy`](crate::dmd::RankSelection::Energy) fraction outside `(0, 1]`).
    InvalidConfig {
        /// What was wrong, in human terms.
        what: String,
    },
    /// A numerical kernel reported failure (non-convergence, singularity,
    /// orthogonality drift) that the solver ladder could not repair.
    Numerical {
        /// Where in the pipeline the kernel was invoked.
        context: String,
        /// The typed kernel error.
        source: LinAlgError,
    },
    /// A batch value was NaN or ±Inf and the active [`crate::ingest::GapPolicy`]
    /// is [`Reject`](crate::ingest::GapPolicy::Reject).
    NonFinite {
        /// Sensor (row) of the offending value.
        row: usize,
        /// Batch-local column of the offending value.
        col: usize,
    },
    /// The batch's row count does not match the stream the model tracks.
    ShapeMismatch {
        /// Rows the model (or guard) expects.
        expected_rows: usize,
        /// Rows the batch carried.
        got_rows: usize,
    },
    /// A background refit thread died (panicked) before delivering a result.
    RefitDead,
    /// Checkpoint persistence or restore failed.
    Checkpoint(CheckpointError),
}

impl std::fmt::Display for CoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoreError::InvalidConfig { what } => write!(f, "invalid configuration: {what}"),
            CoreError::Numerical { context, source } => {
                write!(f, "numerical failure in {context}: {source}")
            }
            CoreError::NonFinite { row, col } => {
                write!(f, "non-finite value at sensor {row}, batch column {col}")
            }
            CoreError::ShapeMismatch {
                expected_rows,
                got_rows,
            } => write!(
                f,
                "batch has {got_rows} rows but the stream tracks {expected_rows}"
            ),
            CoreError::RefitDead => write!(f, "background refit thread died before finishing"),
            CoreError::Checkpoint(e) => write!(f, "checkpoint: {e}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Checkpoint(e) => Some(e),
            CoreError::Numerical { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<CheckpointError> for CoreError {
    fn from(e: CheckpointError) -> Self {
        CoreError::Checkpoint(e)
    }
}
