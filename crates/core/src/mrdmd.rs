//! Multiresolution Dynamic Mode Decomposition (Kutz, Fu & Brunton 2016).
//!
//! mrDMD screens dynamics from slow to fast: at each level the window's DMD
//! is computed on a decimated copy (four times the Nyquist rate of the
//! slowest retained modes, Sec. III-A), the modes oscillating at most
//! `max_cycles` times per window are kept as that level's contribution, their
//! reconstruction is subtracted, and the residual is split in half and
//! recursed on. The collected per-node mode sets form a binary tree over the
//! timeline; summing every node's slow-mode reconstruction over its window
//! reproduces the signal minus the high-frequency noise floor (Eqs. 7–8).

use crate::dmd::{Dmd, DmdConfig, FitStrategy, RankSelection};
use crate::error::CoreError;
use crate::health::FitFault;
use hpc_linalg::pool::WorkerPool;
use hpc_linalg::{c64, CMat, Mat};
use serde::{Deserialize, Serialize};

/// Minimum residual-buffer size (`rows × cols` elements) of a subtree before
/// the recursion forks it onto another worker. Mirrors the role of
/// `PAR_FLOP_THRESHOLD` in the matmul kernel: below this the ~0.1 ms thread
/// spawn would rival the subtree's own arithmetic.
pub(crate) const PAR_TREE_MIN_ELEMS: usize = 32_768;

/// Configuration of the multiresolution recursion.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct MrDmdConfig {
    /// Snapshot spacing in seconds.
    pub dt: f64,
    /// Maximum recursion depth `L` (level 1 = whole timeline).
    pub max_levels: usize,
    /// Modes oscillating at most this many times per window count as "slow".
    pub max_cycles: usize,
    /// SVD truncation rule for every per-node DMD.
    pub rank: RankSelection,
    /// Decimation keeps `nyquist_factor × 2 × max_cycles` samples per window
    /// (the paper follows its refs. \[2\], \[3\] in using four times the Nyquist limit).
    pub nyquist_factor: usize,
    /// Windows shorter than this many snapshots are not split further.
    pub min_window: usize,
    /// Cap on in-window amplitude growth: a mode's `Re ψ` is clamped so that
    /// `exp(Re ψ · window)` never exceeds this factor. Residuals at deep
    /// levels are numerically tiny, and an unclamped spurious eigenvalue
    /// `|λ| ≫ 1` would overwhelm its near-zero amplitude exponentially.
    pub max_window_growth: f64,
    /// Worker threads for the fit and reconstruction: `0` sizes to the
    /// machine (`HPC_LINALG_THREADS` or `available_parallelism`), `1` runs
    /// serially, `n ≥ 2` uses exactly `n` threads. Results are
    /// bitwise-identical at every setting — the pool only moves independent
    /// subtrees and row blocks between threads, never reorders arithmetic.
    pub n_threads: usize,
    /// How every per-node snapshot SVD is computed (absent in old
    /// checkpoints ⇒ [`FitStrategy::Exact`]). Under `Sketched`, each tree
    /// node mixes the configured seed with its absolute window position
    /// ([`FitStrategy::for_node`]) so sibling probes decorrelate while
    /// results stay bitwise-deterministic at any thread count.
    pub strategy: FitStrategy,
}

impl Default for MrDmdConfig {
    fn default() -> Self {
        MrDmdConfig {
            dt: 1.0,
            max_levels: 6,
            max_cycles: 2,
            rank: RankSelection::Svht,
            nyquist_factor: 4,
            min_window: 16,
            max_window_growth: 1e3,
            n_threads: 0,
            strategy: FitStrategy::Exact,
        }
    }
}

/// Clamps each mode's growth rate so its envelope gains at most
/// `max_window_growth` over a window of `window_secs` seconds.
pub(crate) fn clamp_growth(omegas: &mut [c64], window_secs: f64, max_window_growth: f64) {
    if window_secs <= 0.0 || !max_window_growth.is_finite() {
        return;
    }
    let max_re = max_window_growth.ln() / window_secs;
    for w in omegas {
        if w.re > max_re {
            *w = c64::new(max_re, w.im);
        }
    }
}

impl MrDmdConfig {
    /// Decimation step for a window of `w` snapshots.
    pub fn subsample_step(&self, w: usize) -> usize {
        (w / (self.nyquist_factor * 2 * self.max_cycles)).max(1)
    }

    /// Slow-mode cutoff frequency (Hz) for a window of `w` snapshots:
    /// `max_cycles` oscillations per window duration.
    pub fn slow_cutoff_hz(&self, w: usize) -> f64 {
        self.max_cycles as f64 / (w as f64 * self.dt)
    }

    /// Checks every field's domain: positive finite `dt`, at least one
    /// level and one cycle, a nonzero Nyquist factor, a splittable
    /// `min_window`, a positive growth cap, and a valid rank rule.
    pub fn validate(&self) -> Result<(), CoreError> {
        let fail = |what: String| Err(CoreError::InvalidConfig { what });
        if !(self.dt > 0.0 && self.dt.is_finite()) {
            return fail(format!(
                "snapshot spacing dt must be positive and finite, got {}",
                self.dt
            ));
        }
        if self.max_levels < 1 {
            return fail("max_levels must be at least 1".into());
        }
        if self.max_cycles < 1 {
            return fail("max_cycles must be at least 1".into());
        }
        if self.nyquist_factor < 1 {
            return fail("nyquist_factor must be at least 1".into());
        }
        if self.min_window < 2 {
            return fail(format!(
                "min_window must be at least 2 snapshots, got {}",
                self.min_window
            ));
        }
        if self.max_window_growth <= 0.0 || self.max_window_growth.is_nan() {
            return fail(format!(
                "max_window_growth must be positive, got {}",
                self.max_window_growth
            ));
        }
        self.rank.validate()?;
        self.strategy.validate()
    }

    /// Builder-first construction; [`MrDmdConfigBuilder::build`] runs
    /// [`validate`](Self::validate), so a bad value fails at construction
    /// rather than as a panic inside [`MrDmd::fit`].
    pub fn builder() -> MrDmdConfigBuilder {
        MrDmdConfigBuilder {
            cfg: MrDmdConfig::default(),
        }
    }
}

/// Builder for [`MrDmdConfig`]; see [`MrDmdConfig::builder`].
#[derive(Clone, Debug)]
pub struct MrDmdConfigBuilder {
    cfg: MrDmdConfig,
}

impl MrDmdConfigBuilder {
    /// Snapshot spacing in seconds.
    #[must_use]
    pub fn dt(mut self, dt: f64) -> Self {
        self.cfg.dt = dt;
        self
    }

    /// Maximum recursion depth `L` (level 1 = whole timeline).
    #[must_use]
    pub fn max_levels(mut self, max_levels: usize) -> Self {
        self.cfg.max_levels = max_levels;
        self
    }

    /// Modes oscillating at most this many times per window count as slow.
    #[must_use]
    pub fn max_cycles(mut self, max_cycles: usize) -> Self {
        self.cfg.max_cycles = max_cycles;
        self
    }

    /// SVD truncation rule for every per-node DMD.
    #[must_use]
    pub fn rank(mut self, rank: RankSelection) -> Self {
        self.cfg.rank = rank;
        self
    }

    /// Samples kept per window: `nyquist_factor × 2 × max_cycles`.
    #[must_use]
    pub fn nyquist_factor(mut self, nyquist_factor: usize) -> Self {
        self.cfg.nyquist_factor = nyquist_factor;
        self
    }

    /// Windows shorter than this many snapshots are not split further.
    #[must_use]
    pub fn min_window(mut self, min_window: usize) -> Self {
        self.cfg.min_window = min_window;
        self
    }

    /// Cap on in-window amplitude growth.
    #[must_use]
    pub fn max_window_growth(mut self, max_window_growth: f64) -> Self {
        self.cfg.max_window_growth = max_window_growth;
        self
    }

    /// Worker threads (0 = machine-sized, 1 = serial).
    #[must_use]
    pub fn n_threads(mut self, n_threads: usize) -> Self {
        self.cfg.n_threads = n_threads;
        self
    }

    /// How every per-node snapshot SVD is computed.
    #[must_use]
    pub fn fit_strategy(mut self, strategy: FitStrategy) -> Self {
        self.cfg.strategy = strategy;
        self
    }

    /// Validates every field and returns the configuration.
    pub fn build(self) -> Result<MrDmdConfig, CoreError> {
        self.cfg.validate()?;
        Ok(self.cfg)
    }
}

/// The slow modes extracted at one node (level, window) of the mrDMD tree.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ModeSet {
    /// Level in the multiresolution tree (1 = coarsest / whole timeline).
    pub level: usize,
    /// Absolute snapshot index where this node's window starts.
    pub start: usize,
    /// Window length in snapshots.
    pub window: usize,
    /// Decimation step used for the fit.
    pub step: usize,
    /// First global sensor row this node's modes cover. Nodes fitted on the
    /// original stream use 0; nodes fitted for sensors added later via
    /// [`IMrDmd::add_series`](crate::imrdmd::IMrDmd::add_series) cover only
    /// the appended rows.
    pub row_offset: usize,
    /// Slow DMD modes (`rows × k`, covering global sensor rows
    /// `row_offset..row_offset + rows`).
    pub modes: CMat,
    /// Discrete eigenvalues of the retained modes (at the decimated spacing).
    pub lambdas: Vec<c64>,
    /// Continuous eigenvalues ψ (per second; valid at any time resolution).
    pub omegas: Vec<c64>,
    /// Mode amplitudes fitted at the window start.
    pub amplitudes: Vec<c64>,
}

impl ModeSet {
    /// Number of retained slow modes.
    pub fn n_modes(&self) -> usize {
        self.lambdas.len()
    }

    /// Oscillation frequencies in Hz (Eq. 9).
    pub fn frequencies(&self) -> Vec<f64> {
        self.omegas
            .iter()
            .map(|w| w.im.abs() / (2.0 * std::f64::consts::PI))
            .collect()
    }

    /// Mode powers `‖φ‖₂²` (Eq. 10).
    pub fn powers(&self) -> Vec<f64> {
        (0..self.modes.cols())
            .map(|j| self.modes.col_norm_sqr(j))
            .collect()
    }

    /// Adds this node's reconstruction to `out`, where column `c` of `out`
    /// holds absolute snapshot `out_start + c`. Only the overlap of the
    /// node's window with `out` is touched.
    pub fn add_reconstruction(&self, out: &mut Mat, out_start: usize, dt: f64) {
        self.apply_reconstruction(out, out_start, dt, 1.0);
    }

    /// Subtracts this node's reconstruction from `out` (the residual step of
    /// the multiresolution recursion, done in place to avoid copying the
    /// window).
    pub fn subtract_reconstruction(&self, out: &mut Mat, out_start: usize, dt: f64) {
        self.apply_reconstruction(out, out_start, dt, -1.0);
    }

    fn apply_reconstruction(&self, out: &mut Mat, out_start: usize, dt: f64, sign: f64) {
        let (rows, cols) = (out.rows(), out.cols());
        self.apply_reconstruction_rows(out.as_mut_slice(), 0, rows, cols, out_start, dt, sign);
    }

    /// Same as [`apply_reconstruction`](Self::apply_reconstruction) but
    /// restricted to a row block: `block` holds global output rows
    /// `[grow0, grow1)` in row-major order with `out_cols` columns. Disjoint
    /// row blocks can be filled concurrently; every element receives exactly
    /// the additions (in the same order) it would in a whole-matrix pass, so
    /// any row chunking produces bitwise-identical output.
    #[allow(clippy::too_many_arguments)] // a flat (range, geometry) tuple is clearest here
    pub(crate) fn apply_reconstruction_rows(
        &self,
        block: &mut [f64],
        grow0: usize,
        grow1: usize,
        out_cols: usize,
        out_start: usize,
        dt: f64,
        sign: f64,
    ) {
        if self.n_modes() == 0 {
            return;
        }
        let node_end = self.start + self.window;
        let out_end = out_start + out_cols;
        let lo = self.start.max(out_start);
        let hi = node_end.min(out_end);
        if lo >= hi {
            return;
        }
        // Node-local rows whose global row (`row_offset + i`) falls in the block.
        let i0 = grow0.saturating_sub(self.row_offset);
        let i1 = self.modes.rows().min(grow1.saturating_sub(self.row_offset));
        if i0 >= i1 {
            return;
        }
        let mut weights = vec![c64::ZERO; self.n_modes()];
        for abs in lo..hi {
            let t_rel = (abs - self.start) as f64 * dt;
            for ((wgt, &w), &a) in weights.iter_mut().zip(&self.omegas).zip(&self.amplitudes) {
                *wgt = (w * t_rel).exp() * a;
            }
            let col = abs - out_start;
            for i in i0..i1 {
                let row = self.modes.row(i);
                let mut acc = c64::ZERO;
                for (&phi, &w) in row.iter().zip(&weights) {
                    acc = acc.mul_add(phi, w);
                }
                block[(self.row_offset + i - grow0) * out_cols + col] += sign * acc.re;
            }
        }
    }

    /// A copy keeping only the modes admitted by `filter` — the paper's
    /// "selecting only high-power DMD modes from the mrDMD power spectrum"
    /// (Sec. V) and its frequency-band restriction.
    pub fn filtered(&self, filter: &crate::spectrum::BandFilter) -> ModeSet {
        let keep = filter.select_modes(self);
        ModeSet {
            modes: self.modes.select_cols(&keep),
            lambdas: keep.iter().map(|&i| self.lambdas[i]).collect(),
            omegas: keep.iter().map(|&i| self.omegas[i]).collect(),
            amplitudes: keep.iter().map(|&i| self.amplitudes[i]).collect(),
            ..self.clone()
        }
    }

    /// Frequency (Hz) of this node's highest-power mode, if any.
    pub fn dominant_frequency(&self) -> Option<f64> {
        let powers = self.powers();
        let freqs = self.frequencies();
        powers
            .iter()
            .zip(&freqs)
            .max_by(|a, b| a.0.total_cmp(b.0))
            .map(|(_, &f)| f)
    }

    /// Total mode power of this node.
    pub fn total_power(&self) -> f64 {
        self.powers().iter().sum()
    }

    /// Evaluates this node's contribution at an arbitrary absolute snapshot,
    /// **without clipping to the window** — extrapolation for forecasting.
    /// Returns one value per mode-local row.
    pub fn eval_extrapolated(&self, abs: usize, dt: f64) -> Vec<f64> {
        let p = self.modes.rows();
        let mut out = vec![0.0; p];
        if self.n_modes() == 0 || abs < self.start {
            return out;
        }
        let t_rel = (abs - self.start) as f64 * dt;
        let weights: Vec<c64> = self
            .omegas
            .iter()
            .zip(&self.amplitudes)
            .map(|(&w, &a)| (w * t_rel).exp() * a)
            .collect();
        for (i, o) in out.iter_mut().enumerate() {
            let row = self.modes.row(i);
            let mut acc = c64::ZERO;
            for (&phi, &w) in row.iter().zip(&weights) {
                acc = acc.mul_add(phi, w);
            }
            *o = acc.re;
        }
        out
    }
}

/// A fitted multiresolution DMD: the flattened tree of per-node mode sets.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct MrDmd {
    /// Configuration used for the fit.
    pub config: MrDmdConfig,
    /// All nodes, in depth-first order (root first).
    pub nodes: Vec<ModeSet>,
    /// Number of time series (sensors).
    pub n_rows: usize,
    /// Total snapshots covered.
    pub n_steps: usize,
    /// Node fits that failed numerically; the corresponding windows carry no
    /// modes at that level but the rest of the tree is intact.
    pub faults: Vec<FitFault>,
}

impl MrDmd {
    /// Fits the full multiresolution decomposition to `data` (`P × T`).
    ///
    /// A node whose solver fails after its escalation ladder is recorded in
    /// [`faults`](Self::faults) and skipped — the recursion continues into
    /// its halves, so one pathological window degrades locally instead of
    /// aborting the whole fit.
    pub fn fit(data: &Mat, config: &MrDmdConfig) -> MrDmd {
        match Self::try_fit(data, config) {
            Ok(m) => m,
            // Preserved legacy contract: the infallible entry point aborts on
            // an out-of-domain configuration, as its asserts used to.
            #[allow(clippy::panic)]
            Err(e) => panic!("mrDMD fit failed: {e}"),
        }
    }

    /// Fallible twin of [`fit`](Self::fit): configuration problems surface
    /// as [`CoreError::InvalidConfig`] instead of a panic. Per-node solver
    /// failures are still degradations recorded in [`faults`](Self::faults),
    /// never errors — one pathological window must not abort the fit.
    pub fn try_fit(data: &Mat, config: &MrDmdConfig) -> Result<MrDmd, CoreError> {
        config.validate()?;
        let mut nodes = Vec::new();
        let mut faults = Vec::new();
        let mut work = data.clone();
        let t = work.cols();
        let pool = WorkerPool::new(config.n_threads);
        fit_tree(
            &mut work,
            0,
            t,
            0,
            0,
            config,
            1,
            config.max_levels,
            &pool,
            &mut nodes,
            &mut faults,
        );
        Ok(MrDmd {
            config: *config,
            nodes,
            n_rows: data.rows(),
            n_steps: data.cols(),
            faults,
        })
    }

    /// Total number of modes across all nodes.
    pub fn n_modes(&self) -> usize {
        self.nodes.iter().map(ModeSet::n_modes).sum()
    }

    /// Deepest level materialised.
    pub fn depth(&self) -> usize {
        self.nodes.iter().map(|n| n.level).max().unwrap_or(0)
    }

    /// Reconstructs the denoised signal over absolute snapshots
    /// `[t0, t1)` by summing every node's contribution (Eq. 7).
    pub fn reconstruct_range(&self, t0: usize, t1: usize) -> Mat {
        assert!(t0 <= t1 && t1 <= self.n_steps);
        let pool = WorkerPool::new(self.config.n_threads);
        reconstruct_nodes(
            &self.nodes.iter().collect::<Vec<_>>(),
            self.n_rows,
            t0,
            t1,
            self.config.dt,
            &pool,
        )
    }

    /// Reconstructs the full fitted timeline.
    pub fn reconstruct(&self) -> Mat {
        self.reconstruct_range(0, self.n_steps)
    }

    /// The node at `level` whose window contains absolute snapshot `t`, if
    /// one was materialised.
    pub fn node_at(&self, level: usize, t: usize) -> Option<&ModeSet> {
        self.nodes
            .iter()
            .find(|n| n.level == level && t >= n.start && t < n.start + n.window)
    }

    /// A copy of the tree with every node's modes restricted by `filter`
    /// (band and/or power floor). Reconstruction from the filtered tree is
    /// the paper's extra denoising step.
    pub fn filtered(&self, filter: &crate::spectrum::BandFilter) -> MrDmd {
        MrDmd {
            config: self.config,
            nodes: self.nodes.iter().map(|n| n.filtered(filter)).collect(),
            n_rows: self.n_rows,
            n_steps: self.n_steps,
            faults: self.faults.clone(),
        }
    }

    /// A terse per-level summary of the tree (windows, modes, power) — handy
    /// for logs and REPL inspection.
    pub fn tree_summary(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for lvl in 1..=self.depth() {
            let nodes: Vec<&ModeSet> = self.nodes.iter().filter(|n| n.level == lvl).collect();
            let modes: usize = nodes.iter().map(|n| n.n_modes()).sum();
            let power: f64 = nodes.iter().map(|n| n.total_power()).sum();
            let _ = writeln!(
                out,
                "level {lvl}: {} node(s), {} mode(s), total power {power:.3e}",
                nodes.len(),
                modes
            );
        }
        out
    }
}

/// Sums every node's contribution over absolute snapshots `[t0, t1)` into a
/// fresh `n_rows × (t1 − t0)` matrix, fanning the output's row blocks across
/// `pool`. Each block walks the nodes in the given order, so every element
/// sees exactly the serial pass's additions in the serial order — the result
/// is bitwise-identical at any thread count (the chunk size is fixed, not
/// derived from the pool).
pub(crate) fn reconstruct_nodes(
    nodes: &[&ModeSet],
    n_rows: usize,
    t0: usize,
    t1: usize,
    dt: f64,
    pool: &WorkerPool,
) -> Mat {
    let width = t1 - t0;
    let mut out = Mat::zeros(n_rows, width);
    if width == 0 || n_rows == 0 {
        return out;
    }
    let chunk_rows = (PAR_TREE_MIN_ELEMS / width).clamp(1, n_rows);
    let mut blocks: Vec<(usize, &mut [f64])> = out
        .as_mut_slice()
        .chunks_mut(chunk_rows * width)
        .enumerate()
        .map(|(ci, s)| (ci * chunk_rows, s))
        .collect();
    pool.for_each(&mut blocks, &|(grow0, block)| {
        let rows_here = block.len() / width;
        for node in nodes {
            node.apply_reconstruction_rows(block, *grow0, *grow0 + rows_here, width, t0, dt, 1.0);
        }
    });
    out
}

/// Fits the subtree over columns `[lo, hi)` of the shared residual buffer
/// `work` (whose column 0 holds absolute snapshot `buf_abs0`), pushing nodes
/// into `nodes`. Residual subtraction happens in place — the recursion never
/// copies the window on the serial path, which keeps the memory traffic at
/// `O(P·T)` per level; a forked right half works on its own copy (see
/// [`fit_halves`]).
///
/// Shared by the batch fit (level 1 over the whole buffer) and the
/// incremental update (level 2 over the new batch at offset `T`).
#[allow(clippy::too_many_arguments)] // internal recursion; the tuple of ranges is clearest flat
pub(crate) fn fit_tree(
    work: &mut Mat,
    lo: usize,
    hi: usize,
    buf_abs0: usize,
    row_offset: usize,
    cfg: &MrDmdConfig,
    level: usize,
    max_levels: usize,
    pool: &WorkerPool,
    nodes: &mut Vec<ModeSet>,
    faults: &mut Vec<FitFault>,
) {
    let w = hi.saturating_sub(lo);
    if w < 2 || work.rows() == 0 {
        return;
    }
    let start_abs = buf_abs0 + lo;
    let step = cfg.subsample_step(w);
    let sub = work.subsample_cols_range(lo, hi, step);
    if sub.cols() >= 2 {
        // Salt from the node's absolute position (level, start, width):
        // independent of traversal order and thread count, unique per node.
        let salt = ((level as u64) << 48) ^ ((start_abs as u64) << 16) ^ w as u64;
        let dmd_cfg = DmdConfig {
            dt: cfg.dt * step as f64,
            rank: cfg.rank,
            strategy: cfg.strategy.for_node(salt),
        };
        match Dmd::try_fit(&sub, &dmd_cfg) {
            Ok(dmd) => {
                let cutoff = cfg.slow_cutoff_hz(w);
                let slow_idx: Vec<usize> = dmd
                    .frequencies()
                    .iter()
                    .enumerate()
                    .filter(|(_, &f)| f <= cutoff)
                    .map(|(i, _)| i)
                    .collect();
                if !slow_idx.is_empty() {
                    let mut omegas: Vec<c64> = slow_idx.iter().map(|&i| dmd.omegas[i]).collect();
                    clamp_growth(&mut omegas, w as f64 * cfg.dt, cfg.max_window_growth);
                    let mut node = ModeSet {
                        level,
                        start: start_abs,
                        window: w,
                        step,
                        // The work buffer is row-local; subtract at offset 0 and
                        // attach the global offset afterwards.
                        row_offset: 0,
                        modes: dmd.modes.select_cols(&slow_idx),
                        lambdas: slow_idx.iter().map(|&i| dmd.lambdas[i]).collect(),
                        omegas,
                        amplitudes: slow_idx.iter().map(|&i| dmd.amplitudes[i]).collect(),
                    };
                    // Subtract the slow reconstruction at full resolution before
                    // recursing (Eq. 8, second term) — in place on the shared buffer.
                    node.subtract_reconstruction(work, buf_abs0, cfg.dt);
                    node.row_offset = row_offset;
                    nodes.push(node);
                }
            }
            Err(e) => {
                // Degrade, don't die: record the fault, leave the residual
                // untouched (nothing was explained at this level) and keep
                // recursing — the halves see shorter, better-conditioned
                // windows and often still converge.
                faults.push(FitFault {
                    level,
                    start: start_abs,
                    window: w,
                    row_offset,
                    at_step: 0, // stamped by the streaming layer
                    cause: e.to_string(),
                });
            }
        }
    }
    fit_halves(
        work, lo, hi, buf_abs0, row_offset, cfg, level, max_levels, pool, nodes, faults,
    );
}

/// Recurses on the two halves of `[lo, hi)` at `parent_level + 1`, forking
/// the right half onto another worker when the pool has a permit and the
/// half is big enough to amortise the spawn.
///
/// The forked branch gets a *copy* of its columns (the only sound way to
/// hand two threads disjoint halves of one allocation without `unsafe`
/// views). This is safe because no caller ever reads the residual buffer
/// after its subtree is fitted — the buffer exists only to carry residuals
/// *down* the recursion. Left-half nodes land in `nodes` directly; the
/// forked right half collects into a private vector appended afterwards, so
/// the depth-first node order — and, since the copied columns hold the same
/// values the in-place path would see, every fitted mode — is
/// bitwise-identical to the serial recursion.
#[allow(clippy::too_many_arguments)]
pub(crate) fn fit_halves(
    work: &mut Mat,
    lo: usize,
    hi: usize,
    buf_abs0: usize,
    row_offset: usize,
    cfg: &MrDmdConfig,
    parent_level: usize,
    max_levels: usize,
    pool: &WorkerPool,
    nodes: &mut Vec<ModeSet>,
    faults: &mut Vec<FitFault>,
) {
    let w = hi.saturating_sub(lo);
    if parent_level >= max_levels || w / 2 < cfg.min_window {
        return;
    }
    let mid = lo + w / 2;
    let level = parent_level + 1;
    if work.rows() * (hi - mid) >= PAR_TREE_MIN_ELEMS {
        if let Some(fork) = pool.try_fork() {
            let mut right_buf = work.cols_range(mid, hi);
            let right_w = hi - mid;
            let mut right_nodes = Vec::new();
            // Faults mirror the node pattern: the forked branch collects into
            // a private vector appended after the join, so the fault order is
            // bitwise-identical to the serial recursion at any thread count.
            let mut right_faults = Vec::new();
            let left = &mut *work;
            let left_nodes = &mut *nodes;
            let left_faults = &mut *faults;
            fork.join(
                || {
                    fit_tree(
                        left,
                        lo,
                        mid,
                        buf_abs0,
                        row_offset,
                        cfg,
                        level,
                        max_levels,
                        pool,
                        left_nodes,
                        left_faults,
                    )
                },
                || {
                    fit_tree(
                        &mut right_buf,
                        0,
                        right_w,
                        buf_abs0 + mid,
                        row_offset,
                        cfg,
                        level,
                        max_levels,
                        pool,
                        &mut right_nodes,
                        &mut right_faults,
                    )
                },
            );
            nodes.append(&mut right_nodes);
            faults.append(&mut right_faults);
            return;
        }
    }
    fit_tree(
        work, lo, mid, buf_abs0, row_offset, cfg, level, max_levels, pool, nodes, faults,
    );
    fit_tree(
        work, mid, hi, buf_abs0, row_offset, cfg, level, max_levels, pool, nodes, faults,
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    const TAU: f64 = std::f64::consts::TAU;

    /// Multiscale signal: slow global traveling wave + fast traveling wave
    /// present only in the second half + high-frequency ripple. Traveling
    /// waves keep each frequency linearly representable (rank-2 subspace).
    fn multiscale_data(p: usize, t: usize, dt: f64) -> Mat {
        Mat::from_fn(p, t, |i, j| {
            let x = i as f64 / p as f64;
            let tt = j as f64 * dt;
            // 0.1 Hz is slow for windows of ≤ 32 snapshots at dt = 0.5
            // (cutoff = 2/(32·0.5) = 0.125 Hz), so a 5-level tree over 512
            // snapshots can capture the burst.
            let slow = (TAU * 0.02 * tt + 2.0 * x).sin();
            let fast = if j >= t / 2 {
                0.6 * (TAU * 0.1 * tt + 5.0 * x).sin()
            } else {
                0.0
            };
            let ripple = 0.02 * (TAU * 20.0 * tt + 11.0 * x).sin();
            slow + fast + ripple
        })
    }

    fn cfg(dt: f64, levels: usize) -> MrDmdConfig {
        MrDmdConfig {
            dt,
            max_levels: levels,
            max_cycles: 2,
            rank: RankSelection::Fixed(6),
            nyquist_factor: 4,
            min_window: 16,
            max_window_growth: 1e3,
            n_threads: 0,
            strategy: FitStrategy::Exact,
        }
    }

    #[test]
    fn tree_structure_covers_timeline() {
        let dt = 0.5;
        let data = multiscale_data(12, 512, dt);
        let m = MrDmd::fit(&data, &cfg(dt, 4));
        assert!(m.depth() >= 3);
        // Every level's windows must tile [0, T) without overlap.
        for lvl in 1..=m.depth() {
            let mut spans: Vec<(usize, usize)> = m
                .nodes
                .iter()
                .filter(|n| n.level == lvl)
                .map(|n| (n.start, n.start + n.window))
                .collect();
            spans.sort();
            for w in spans.windows(2) {
                assert!(w[0].1 <= w[1].0, "overlap at level {lvl}: {spans:?}");
            }
        }
    }

    #[test]
    fn reconstruction_tracks_signal() {
        let dt = 0.5;
        let data = multiscale_data(10, 512, dt);
        let m = MrDmd::fit(&data, &cfg(dt, 5));
        let rec = m.reconstruct();
        let rel = rec.fro_dist(&data) / data.fro_norm();
        assert!(rel < 0.35, "relative reconstruction error {rel}");
    }

    #[test]
    fn deeper_trees_reduce_error() {
        let dt = 0.5;
        let data = multiscale_data(10, 512, dt);
        let shallow = MrDmd::fit(&data, &cfg(dt, 2));
        let deep = MrDmd::fit(&data, &cfg(dt, 5));
        let e_shallow = shallow.reconstruct().fro_dist(&data);
        let e_deep = deep.reconstruct().fro_dist(&data);
        assert!(
            e_deep <= e_shallow * 1.05,
            "deep {e_deep} should not exceed shallow {e_shallow}"
        );
    }

    #[test]
    fn root_captures_slowest_frequency() {
        let dt = 0.5;
        let data = multiscale_data(10, 512, dt);
        let m = MrDmd::fit(&data, &cfg(dt, 4));
        let root = &m.nodes[0];
        assert_eq!(root.level, 1);
        assert_eq!(root.start, 0);
        assert_eq!(root.window, 512);
        let cutoff = m.config.slow_cutoff_hz(512);
        for f in root.frequencies() {
            assert!(
                f <= cutoff + 1e-12,
                "root mode at {f} Hz above cutoff {cutoff}"
            );
        }
    }

    #[test]
    fn fast_transient_lands_in_deeper_levels() {
        let dt = 0.5;
        let data = multiscale_data(10, 512, dt);
        let m = MrDmd::fit(&data, &cfg(dt, 5));
        // The 1.5 Hz burst can only be "slow" for windows short enough that
        // 1.5 Hz ≤ max_cycles/(w·dt): w ≤ 2/(1.5·0.5) ≈ 2.7 snapshots — so it
        // appears via its aliased/fitted dynamics in levels > 1. Check that
        // deeper levels collectively hold more high-frequency content.
        let hf_power_deep: f64 = m
            .nodes
            .iter()
            .filter(|n| n.level >= 3)
            .flat_map(|n| n.frequencies().into_iter().zip(n.powers()))
            .filter(|(f, _)| *f > 0.01)
            .map(|(_, p)| p)
            .sum();
        let hf_power_root: f64 = m.nodes[0]
            .frequencies()
            .into_iter()
            .zip(m.nodes[0].powers())
            .filter(|(f, _)| *f > 0.01)
            .map(|(_, p)| p)
            .sum();
        assert!(hf_power_deep > hf_power_root);
    }

    #[test]
    fn subsample_step_respects_nyquist_times_four() {
        let c = cfg(1.0, 4);
        // 4×Nyquist of max_cycles=2 per window → 16 samples per window.
        assert_eq!(c.subsample_step(1600), 100);
        assert_eq!(c.subsample_step(16), 1);
        assert_eq!(c.subsample_step(5), 1);
    }

    #[test]
    fn max_levels_one_is_plain_slow_dmd() {
        let dt = 0.5;
        let data = multiscale_data(8, 256, dt);
        let m = MrDmd::fit(&data, &cfg(dt, 1));
        assert!(m.nodes.len() <= 1);
        assert!(m.depth() <= 1);
    }

    #[test]
    fn reconstruct_range_matches_full_slice() {
        let dt = 0.5;
        let data = multiscale_data(8, 256, dt);
        let m = MrDmd::fit(&data, &cfg(dt, 4));
        let full = m.reconstruct();
        let part = m.reconstruct_range(100, 200);
        assert!(part.fro_dist(&full.cols_range(100, 200)) < 1e-10);
    }

    #[test]
    fn power_filtering_denoises_without_losing_the_signal() {
        let dt = 0.5;
        let data = multiscale_data(10, 512, dt);
        let m = MrDmd::fit(&data, &cfg(dt, 5));
        let pts = crate::spectrum::mode_spectrum(&m.nodes);
        // Keep only modes above 1% of the peak power.
        let peak = pts.iter().map(|p| p.power).fold(0.0f64, f64::max);
        let strong = m.filtered(&crate::spectrum::BandFilter {
            f_lo: 0.0,
            f_hi: f64::INFINITY,
            min_power: 0.01 * peak,
        });
        assert!(strong.n_modes() < m.n_modes(), "filter must drop something");
        let e_full = m.reconstruct().fro_dist(&data) / data.fro_norm();
        let e_strong = strong.reconstruct().fro_dist(&data) / data.fro_norm();
        // High-power modes carry the signal: error grows only modestly.
        assert!(
            e_strong < e_full + 0.25,
            "full {e_full} vs strong {e_strong}"
        );
        // An impossible band empties the tree.
        let empty = m.filtered(&crate::spectrum::BandFilter::band(1e6, 2e6));
        assert_eq!(empty.n_modes(), 0);
        assert_eq!(empty.reconstruct().fro_norm(), 0.0);
    }

    #[test]
    fn node_navigation_and_summary() {
        let dt = 0.5;
        let data = multiscale_data(8, 256, dt);
        let m = MrDmd::fit(&data, &cfg(dt, 4));
        let root = m.node_at(1, 100).expect("root covers everything");
        assert_eq!(root.level, 1);
        assert!(root.dominant_frequency().is_some());
        assert!(root.total_power() > 0.0);
        // Level-2 lookup picks the correct half.
        if let Some(n) = m.node_at(2, 200) {
            assert!(n.start <= 200 && 200 < n.start + n.window);
        }
        // Out-of-tree queries return None.
        assert!(m.node_at(99, 0).is_none());
        let summary = m.tree_summary();
        assert!(summary.contains("level 1:"));
        assert_eq!(summary.lines().count(), m.depth());
    }

    #[test]
    fn constant_signal_is_captured_at_root() {
        let data = Mat::from_fn(6, 128, |i, _| i as f64 + 1.0);
        let m = MrDmd::fit(&data, &cfg(1.0, 3));
        let rec = m.reconstruct();
        assert!(rec.fro_dist(&data) / data.fro_norm() < 1e-6);
    }
}
