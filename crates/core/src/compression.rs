//! Storage accounting: how much smaller is the mode tree than the raw data?
//!
//! The paper motivates mrDMD as a compression of terabytes of environment
//! logs into megabytes of modes ("can reduce the data size from terabytes to
//! megabytes"); this module quantifies that for a fitted tree, counting the
//! bytes a serialised model would occupy against the raw `P × T` snapshot
//! matrix.

use crate::mrdmd::ModeSet;
use serde::{Deserialize, Serialize};

/// Byte-level accounting of a fitted decomposition.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct CompressionReport {
    /// Sensors (rows) covered.
    pub n_rows: usize,
    /// Snapshots covered.
    pub n_steps: usize,
    /// Bytes of the raw `f64` snapshot matrix.
    pub raw_bytes: usize,
    /// Bytes of the mode tree (complex modes + eigenvalues + amplitudes +
    /// per-node metadata).
    pub model_bytes: usize,
    /// `raw_bytes / model_bytes`.
    pub ratio: f64,
    /// Total nodes in the tree.
    pub n_nodes: usize,
    /// Total modes across the tree.
    pub n_modes: usize,
}

/// Size of one complex number on the wire (two `f64`).
const C64_BYTES: usize = 16;
/// Per-node metadata: level, start, window, step, row_offset as `u64`.
const NODE_META_BYTES: usize = 5 * 8;

/// Bytes needed to store one node's payload.
pub fn node_bytes(node: &ModeSet) -> usize {
    let k = node.n_modes();
    let rows = node.modes.rows();
    // Modes (rows × k complex) + λ + ψ + a (k complex each).
    rows * k * C64_BYTES + 3 * k * C64_BYTES + NODE_META_BYTES
}

/// Builds the report for a tree covering `n_rows × n_steps` raw values.
pub fn compression_report<'a>(
    nodes: impl IntoIterator<Item = &'a ModeSet>,
    n_rows: usize,
    n_steps: usize,
) -> CompressionReport {
    let mut model_bytes = 0usize;
    let mut n_nodes = 0usize;
    let mut n_modes = 0usize;
    for node in nodes {
        model_bytes += node_bytes(node);
        n_nodes += 1;
        n_modes += node.n_modes();
    }
    let raw_bytes = n_rows * n_steps * 8;
    // An empty tree compresses nothing: report a zero ratio rather than
    // dividing by zero (inf/NaN) or faking a denominator.
    let ratio = if model_bytes == 0 {
        0.0
    } else {
        raw_bytes as f64 / model_bytes as f64
    };
    CompressionReport {
        n_rows,
        n_steps,
        raw_bytes,
        model_bytes,
        ratio,
        n_nodes,
        n_modes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dmd::RankSelection;
    use crate::mrdmd::{MrDmd, MrDmdConfig};
    use hpc_linalg::Mat;

    fn fitted(p: usize, t: usize) -> MrDmd {
        let data = Mat::from_fn(p, t, |i, j| {
            let x = i as f64 / p as f64;
            let tt = j as f64;
            (0.01 * tt + 2.0 * x).sin() + 0.3 * (0.08 * tt + 5.0 * x).cos()
        });
        MrDmd::fit(
            &data,
            &MrDmdConfig {
                dt: 1.0,
                max_levels: 4,
                max_cycles: 2,
                rank: RankSelection::Svht,
                ..MrDmdConfig::default()
            },
        )
    }

    #[test]
    fn long_timelines_compress_well() {
        let m = fitted(64, 4096);
        let r = compression_report(&m.nodes, m.n_rows, m.n_steps);
        assert_eq!(r.raw_bytes, 64 * 4096 * 8);
        assert!(r.model_bytes > 0);
        // The mode tree is independent of T (up to tree depth), so long
        // timelines compress strongly.
        assert!(r.ratio > 5.0, "compression ratio {}", r.ratio);
        assert_eq!(r.n_nodes, m.nodes.len());
        assert_eq!(r.n_modes, m.n_modes());
    }

    #[test]
    fn ratio_grows_with_timeline() {
        let short = {
            let m = fitted(32, 512);
            compression_report(&m.nodes, m.n_rows, m.n_steps).ratio
        };
        let long = {
            let m = fitted(32, 4096);
            compression_report(&m.nodes, m.n_rows, m.n_steps).ratio
        };
        assert!(
            long > short,
            "ratio should grow with T: short {short}, long {long}"
        );
    }

    #[test]
    fn node_bytes_counts_all_payload() {
        let m = fitted(16, 256);
        let node = &m.nodes[0];
        let k = node.n_modes();
        let expected = 16 * k * 16 + 3 * k * 16 + 40;
        assert_eq!(node_bytes(node), expected);
    }

    #[test]
    fn empty_tree_reports_cleanly() {
        let r = compression_report(std::iter::empty(), 100, 1000);
        assert_eq!(r.model_bytes, 0);
        assert_eq!(r.n_nodes, 0);
        assert!(r.ratio.is_finite());
        assert_eq!(r.ratio, 0.0, "zero nodes store nothing: ratio must be 0");
    }
}
