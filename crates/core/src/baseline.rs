//! Baseline selection and z-score analysis (Sec. III-A.2 and the case
//! studies).
//!
//! After the multiresolution decomposition, each sensor (row) gets an
//! aggregate mode magnitude over the band-filtered, high-power modes. A
//! *baseline* set of sensors — chosen by a reading band, e.g. 46–57 °C in
//! case study 1 — defines the expected magnitude distribution, and every
//! sensor's z-score against that distribution colours the rack view:
//! `|z| ≤ 1.5` near baseline, `z > 2` overheating risk, strongly negative
//! `z` an idle/stalled node.

use crate::mrdmd::ModeSet;
use crate::spectrum::BandFilter;
use hpc_linalg::Mat;
use serde::{Deserialize, Serialize};

/// Thresholds used to classify a z-score, with the paper's defaults.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct ZThresholds {
    /// |z| at or below this is "near baseline" (paper: 1.5).
    pub near: f64,
    /// z above this is "very high" / overheating risk (paper: 2.0).
    pub high: f64,
}

impl Default for ZThresholds {
    fn default() -> Self {
        ZThresholds {
            near: 1.5,
            high: 2.0,
        }
    }
}

/// Classification of a sensor relative to the baseline population.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum NodeState {
    /// Strongly negative z: the node is likely idle or stalled.
    Idle,
    /// |z| within the near band.
    NearBaseline,
    /// Positive z between `near` and `high`.
    Warm,
    /// z above `high`: overheating risk.
    Hot,
}

/// Classifies a z-score with the given thresholds.
pub fn classify(z: f64, th: &ZThresholds) -> NodeState {
    if z > th.high {
        NodeState::Hot
    } else if z > th.near {
        NodeState::Warm
    } else if z >= -th.near {
        NodeState::NearBaseline
    } else {
        NodeState::Idle
    }
}

/// Selects baseline rows: those whose mean reading over the window lies in
/// `[lo, hi]` (the paper picks temperature bands, e.g. 45–60 °C).
pub fn select_baseline_rows(data: &Mat, lo: f64, hi: f64) -> Vec<usize> {
    (0..data.rows())
        .filter(|&i| {
            let row = data.row(i);
            if row.is_empty() {
                return false;
            }
            let mean = row.iter().sum::<f64>() / row.len() as f64;
            mean >= lo && mean <= hi
        })
        .collect()
}

/// Per-row aggregate mode magnitude over the filtered modes:
/// `m_i = √( Σ_j (|φ_j[i]|·|a_j|)² )`, amplitude-weighted so rows that load
/// onto energetic dynamics score higher.
pub fn row_mode_magnitudes<'a>(
    nodes: impl IntoIterator<Item = &'a ModeSet>,
    filter: &BandFilter,
    n_rows: usize,
) -> Vec<f64> {
    let mut acc = vec![0.0f64; n_rows];
    for node in nodes {
        let idx = filter.select_modes(node);
        if idx.is_empty() {
            continue;
        }
        let amps: Vec<f64> = idx.iter().map(|&j| node.amplitudes[j].abs()).collect();
        // A node's local row `i` is global sensor row `row_offset + i`
        // (nodes from `add_series` cover only the appended sensors).
        let local_rows = node
            .modes
            .rows()
            .min(n_rows.saturating_sub(node.row_offset));
        #[allow(clippy::needless_range_loop)] // `i` also offsets into `acc`
        for i in 0..local_rows {
            let row = node.modes.row(i);
            for (&j, &a) in idx.iter().zip(&amps) {
                let m = row[j].abs() * a;
                acc[node.row_offset + i] += m * m;
            }
        }
    }
    for x in &mut acc {
        *x = x.sqrt();
    }
    acc
}

/// Z-scores of every row against the baseline population.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ZScores {
    /// One z-score per row.
    pub z: Vec<f64>,
    /// Baseline population mean of the magnitude.
    pub baseline_mean: f64,
    /// Baseline population standard deviation (floored away from zero).
    pub baseline_std: f64,
    /// The rows that defined the baseline.
    pub baseline_rows: Vec<usize>,
}

impl ZScores {
    /// Computes z-scores of `magnitudes` relative to the subset indexed by
    /// `baseline_rows`.
    ///
    /// # Panics
    /// Panics if `baseline_rows` is empty or contains an out-of-range index.
    pub fn from_baseline(magnitudes: &[f64], baseline_rows: &[usize]) -> ZScores {
        assert!(
            !baseline_rows.is_empty(),
            "baseline population must be non-empty"
        );
        let vals: Vec<f64> = baseline_rows.iter().map(|&i| magnitudes[i]).collect();
        let mean = vals.iter().sum::<f64>() / vals.len() as f64;
        let var = vals.iter().map(|&v| (v - mean) * (v - mean)).sum::<f64>() / vals.len() as f64;
        // Floor keeps z finite when the baseline happens to be degenerate.
        let std = var.sqrt().max(1e-12 * mean.abs().max(1.0));
        let z = magnitudes.iter().map(|&m| (m - mean) / std).collect();
        ZScores {
            z,
            baseline_mean: mean,
            baseline_std: std,
            baseline_rows: baseline_rows.to_vec(),
        }
    }

    /// Classifies every row.
    pub fn states(&self, th: &ZThresholds) -> Vec<NodeState> {
        self.z.iter().map(|&z| classify(z, th)).collect()
    }

    /// Fraction of rows within the near-baseline band.
    pub fn fraction_near(&self, th: &ZThresholds) -> f64 {
        if self.z.is_empty() {
            return 0.0;
        }
        let near = self.z.iter().filter(|&&z| z.abs() <= th.near).count();
        near as f64 / self.z.len() as f64
    }
}

/// Two-dimensional per-row embedding from the decomposition: each row's
/// amplitude-weighted loading on the two highest-power filtered modes.
///
/// This is what Fig. 8's mrDMD / I-mrDMD panels plot; baseline and
/// non-baseline sensor populations separate because they load onto different
/// dynamics.
pub fn embedding_2d<'a>(
    nodes: impl IntoIterator<Item = &'a ModeSet>,
    filter: &BandFilter,
    n_rows: usize,
) -> Mat {
    // Rank (node, mode) pairs by power.
    let mut ranked: Vec<(&ModeSet, usize, f64)> = Vec::new();
    for node in nodes {
        let powers = node.powers();
        for j in filter.select_modes(node) {
            ranked.push((node, j, powers[j]));
        }
    }
    ranked.sort_by(|a, b| b.2.total_cmp(&a.2));
    let mut out = Mat::zeros(n_rows, 2);
    for (dim, &(node, j, _)) in ranked.iter().take(2).enumerate() {
        let a = node.amplitudes[j].abs();
        let local_rows = node
            .modes
            .rows()
            .min(n_rows.saturating_sub(node.row_offset));
        for i in 0..local_rows {
            out[(node.row_offset + i, dim)] = node.modes.row(i)[j].abs() * a;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dmd::RankSelection;
    use crate::mrdmd::{MrDmd, MrDmdConfig};

    fn two_population_data(p: usize, t: usize) -> Mat {
        // First half of rows: calm baseline oscillation. Second half: hot,
        // energetic dynamics.
        Mat::from_fn(p, t, |i, j| {
            let tt = j as f64 * 0.5;
            if i < p / 2 {
                50.0 + (std::f64::consts::TAU * 0.01 * tt).sin()
            } else {
                70.0 + 8.0 * (std::f64::consts::TAU * 0.05 * tt).sin()
            }
        })
    }

    fn fit(data: &Mat) -> MrDmd {
        MrDmd::fit(
            data,
            &MrDmdConfig {
                dt: 0.5,
                max_levels: 3,
                max_cycles: 2,
                rank: RankSelection::Fixed(6),
                nyquist_factor: 4,
                min_window: 16,
                max_window_growth: 1e3,
                n_threads: 0,
                ..MrDmdConfig::default()
            },
        )
    }

    #[test]
    fn baseline_selection_by_band() {
        let data = two_population_data(10, 64);
        let rows = select_baseline_rows(&data, 45.0, 55.0);
        assert_eq!(rows, vec![0, 1, 2, 3, 4]);
        let hot = select_baseline_rows(&data, 65.0, 75.0);
        assert_eq!(hot, vec![5, 6, 7, 8, 9]);
    }

    #[test]
    fn hot_rows_get_high_zscores() {
        let data = two_population_data(12, 256);
        let m = fit(&data);
        let mags = row_mode_magnitudes(&m.nodes, &BandFilter::all(), 12);
        let baseline = select_baseline_rows(&data, 45.0, 55.0);
        let zs = ZScores::from_baseline(&mags, &baseline);
        // Baseline rows near zero, hot rows well above.
        let mean_base: f64 = baseline.iter().map(|&i| zs.z[i]).sum::<f64>() / baseline.len() as f64;
        let mean_hot: f64 = (6..12).map(|i| zs.z[i]).sum::<f64>() / 6.0;
        assert!(mean_base.abs() < 2.0, "baseline mean z {mean_base}");
        assert!(mean_hot > 2.0, "hot mean z {mean_hot}");
    }

    #[test]
    fn classification_bands() {
        let th = ZThresholds::default();
        assert_eq!(classify(0.0, &th), NodeState::NearBaseline);
        assert_eq!(classify(1.5, &th), NodeState::NearBaseline);
        assert_eq!(classify(1.8, &th), NodeState::Warm);
        assert_eq!(classify(2.5, &th), NodeState::Hot);
        assert_eq!(classify(-2.0, &th), NodeState::Idle);
        assert_eq!(classify(-1.5, &th), NodeState::NearBaseline);
    }

    #[test]
    fn zscores_of_baseline_population_average_zero() {
        let mags = vec![1.0, 2.0, 3.0, 10.0, 12.0];
        let zs = ZScores::from_baseline(&mags, &[0, 1, 2]);
        let mean_base = (zs.z[0] + zs.z[1] + zs.z[2]) / 3.0;
        assert!(mean_base.abs() < 1e-12);
        assert!(zs.z[3] > 2.0 && zs.z[4] > zs.z[3]);
    }

    #[test]
    fn degenerate_baseline_does_not_divide_by_zero() {
        let mags = vec![5.0, 5.0, 5.0, 6.0];
        let zs = ZScores::from_baseline(&mags, &[0, 1, 2]);
        assert!(zs.z.iter().all(|z| z.is_finite()));
        assert!(zs.z[3] > 0.0);
    }

    #[test]
    fn embedding_separates_populations() {
        let data = two_population_data(12, 256);
        let m = fit(&data);
        let emb = embedding_2d(&m.nodes, &BandFilter::all(), 12);
        assert_eq!(emb.shape(), (12, 2));
        // Centroid distance between populations should exceed the average
        // within-population spread.
        let centroid = |rows: std::ops::Range<usize>| -> (f64, f64) {
            let n = rows.len() as f64;
            let sx: f64 = rows.clone().map(|i| emb[(i, 0)]).sum();
            let sy: f64 = rows.map(|i| emb[(i, 1)]).sum();
            (sx / n, sy / n)
        };
        let (ax, ay) = centroid(0..6);
        let (bx, by) = centroid(6..12);
        let sep = ((ax - bx).powi(2) + (ay - by).powi(2)).sqrt();
        assert!(sep > 0.0, "populations should not coincide");
    }

    #[test]
    fn magnitudes_respect_row_offset() {
        // Two single-node trees: one at offset 0, one covering global rows
        // 3..5 — their magnitudes must land on their own sensors.
        let data = two_population_data(3, 128);
        let m = fit(&data);
        let mut offset_nodes: Vec<crate::mrdmd::ModeSet> = m.nodes.clone();
        for n in &mut offset_nodes {
            n.row_offset = 3;
        }
        let base = row_mode_magnitudes(&m.nodes, &BandFilter::all(), 6);
        let shifted = row_mode_magnitudes(&offset_nodes, &BandFilter::all(), 6);
        assert!(base[..3].iter().any(|&v| v > 0.0));
        assert!(base[3..].iter().all(|&v| v == 0.0));
        assert!(
            shifted[..3].iter().all(|&v| v == 0.0),
            "shifted {shifted:?}"
        );
        assert_eq!(&shifted[3..], &base[..3]);
        // Same for the 2-D embedding.
        let e = embedding_2d(&offset_nodes, &BandFilter::all(), 6);
        assert!((0..3).all(|i| e[(i, 0)] == 0.0 && e[(i, 1)] == 0.0));
        assert!((3..6).any(|i| e[(i, 0)] != 0.0 || e[(i, 1)] != 0.0));
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_baseline_panics() {
        let _ = ZScores::from_baseline(&[1.0, 2.0], &[]);
    }

    #[test]
    fn fraction_near_counts_correctly() {
        let zs = ZScores {
            z: vec![0.0, 1.0, -1.4, 3.0, -2.0],
            baseline_mean: 0.0,
            baseline_std: 1.0,
            baseline_rows: vec![0],
        };
        let th = ZThresholds::default();
        assert!((zs.fraction_near(&th) - 0.6).abs() < 1e-12);
    }
}
