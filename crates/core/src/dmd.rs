//! Exact Dynamic Mode Decomposition (Tu et al. 2014), the per-node solver of
//! the multiresolution recursion.
//!
//! Given snapshots `D ∈ ℝ^{P×T}` sampled every `Δt`, form the shifted pair
//! `X = D[:, :T−1]`, `Y = D[:, 1:]` and approximate the best-fit linear
//! operator `A = Y·X⁺` without ever materialising it (Sec. III-A, Eqs. 1–5):
//! SVD-project to rank `r`, eigendecompose the small `Ã = UᵀYVΣ⁻¹`, and lift
//! the eigenvectors back as exact DMD modes `Φ = YVΣ⁻¹W`.

use crate::error::CoreError;
use hpc_linalg::{
    c64, lstsq_complex, svd_sketched, svd_truncated, svht_rank, try_eig_real, try_lstsq_complex,
    CMat, EigStats, Mat, Svd,
};
use serde::{Deserialize, Serialize};

/// How to pick the SVD truncation rank of the snapshot matrix.
#[derive(Clone, Copy, Debug, PartialEq, Serialize)]
pub enum RankSelection {
    /// Gavish–Donoho optimal singular value hard threshold (the paper's
    /// `do_svht=True` setting).
    Svht,
    /// Fixed rank cap.
    Fixed(usize),
    /// Keep the smallest rank capturing this fraction of squared spectral
    /// energy (0 < fraction ≤ 1).
    Energy(f64),
}

impl RankSelection {
    /// Checks the selection's parameter domain: an [`Energy`] fraction must
    /// lie in `(0, 1]` (NaN is rejected).
    ///
    /// [`Energy`]: RankSelection::Energy
    pub fn validate(&self) -> Result<(), CoreError> {
        if let RankSelection::Energy(frac) = *self {
            let in_domain = frac > 0.0 && frac <= 1.0;
            if !in_domain {
                return Err(CoreError::InvalidConfig {
                    what: format!("energy fraction must be in (0, 1], got {frac}"),
                });
            }
        }
        Ok(())
    }

    /// Resolves the retained rank for singular values `s` of a `rows × cols`
    /// matrix. Total on all inputs: an out-of-domain
    /// [`Energy`](RankSelection::Energy) fraction
    /// (rejected by [`validate`](Self::validate) on every fallible
    /// construction path) falls back to keeping the full spectrum rather
    /// than panicking mid-stream.
    pub fn resolve(&self, s: &[f64], rows: usize, cols: usize) -> usize {
        match *self {
            RankSelection::Svht => svht_rank(s, rows, cols),
            RankSelection::Fixed(r) => r.min(s.len()),
            RankSelection::Energy(frac) => {
                let in_domain = frac > 0.0 && frac <= 1.0;
                let frac = if in_domain { frac } else { 1.0 };
                let total: f64 = s.iter().map(|&x| x * x).sum();
                if total == 0.0 {
                    return 0;
                }
                let mut acc = 0.0;
                for (k, &x) in s.iter().enumerate() {
                    acc += x * x;
                    if acc >= frac * total {
                        return k + 1;
                    }
                }
                s.len()
            }
        }
    }
}

// Manual impl (the derive cannot attach validation): mirrors the derive's
// wire format — unit variant as its name string, payload variants as a
// single-key map — and rejects out-of-domain `Energy` fractions at the
// boundary, so a checkpoint edited by hand cannot smuggle a panic into
// `resolve`.
impl<'de> serde::de::Deserialize<'de> for RankSelection {
    fn deserialize<D: serde::de::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        use serde::de::Error as _;
        let sel = match deserializer.take_content()? {
            serde::Content::Str(s) if s == "Svht" => RankSelection::Svht,
            serde::Content::Map(mut m) if m.len() == 1 => {
                let (key, payload) = m.remove(0);
                match key.as_str() {
                    "Fixed" => {
                        RankSelection::Fixed(serde::from_content::<usize, D::Error>(payload)?)
                    }
                    "Energy" => {
                        RankSelection::Energy(serde::from_content::<f64, D::Error>(payload)?)
                    }
                    other => {
                        return Err(D::Error::custom(format!(
                            "unknown variant `{other}` of RankSelection"
                        )))
                    }
                }
            }
            other => {
                return Err(D::Error::custom(format!(
                    "expected a RankSelection variant, found {other:?}"
                )))
            }
        };
        sel.validate().map_err(D::Error::custom)?;
        Ok(sel)
    }
}

/// How the snapshot SVD underlying a fit is computed.
///
/// `Exact` routes through the historical one-sided Jacobi path and is
/// bitwise-identical to the solver before this enum existed. `Sketched`
/// replaces the dense SVD with a seeded randomized range-finder
/// ([`hpc_linalg::svd_sketched`] for one-shot fits,
/// [`hpc_linalg::SketchSvd`] for streams, where the probed basis is reused
/// and incrementally refreshed across `partial_fit` rounds instead of
/// re-drawn per fit) — see DESIGN.md "Fit strategies" for when it pays off
/// and the accuracy budget it is tested against.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize)]
pub enum FitStrategy {
    /// Exact truncated SVD (one-sided Jacobi) — the historical default.
    #[default]
    Exact,
    /// Seeded randomized range-finder sketch (Halko et al.; Erichson et
    /// al.'s randomized DMD).
    Sketched {
        /// Extra probe columns beyond the retained rank (Halko's `p`;
        /// 5–10 is standard — must be in `1..=64`).
        rank_oversample: usize,
        /// Subspace (power) iterations sharpening the probe against slow
        /// spectral decay (must be `≤ 8`; 1–2 is standard).
        power_iters: usize,
        /// Probe seed: fits are deterministic for a fixed seed at any
        /// thread count. Derived per-node via [`FitStrategy::for_node`].
        seed: u64,
    },
}

impl FitStrategy {
    /// Checks the variant's parameter domain: a `Sketched` oversample must
    /// lie in `1..=64` and `power_iters` in `0..=8`.
    pub fn validate(&self) -> Result<(), CoreError> {
        if let FitStrategy::Sketched {
            rank_oversample,
            power_iters,
            ..
        } = *self
        {
            if rank_oversample == 0 || rank_oversample > 64 {
                return Err(CoreError::InvalidConfig {
                    what: format!(
                        "sketch rank_oversample must be in 1..=64, got {rank_oversample}"
                    ),
                });
            }
            if power_iters > 8 {
                return Err(CoreError::InvalidConfig {
                    what: format!("sketch power_iters must be at most 8, got {power_iters}"),
                });
            }
        }
        Ok(())
    }

    /// Derives the strategy for one tree node: `Sketched` seeds are mixed
    /// with a position-derived salt (splitmix64 finalizer) so sibling nodes
    /// draw decorrelated probes, while staying independent of thread count
    /// and traversal order. `Exact` is returned unchanged.
    #[must_use]
    pub fn for_node(self, salt: u64) -> FitStrategy {
        match self {
            FitStrategy::Exact => FitStrategy::Exact,
            FitStrategy::Sketched {
                rank_oversample,
                power_iters,
                seed,
            } => FitStrategy::Sketched {
                rank_oversample,
                power_iters,
                seed: mix_seed(seed, salt),
            },
        }
    }
}

/// splitmix64 finalizer over `seed ⊕ golden·salt`: cheap, stateless, and
/// avalanching, so adjacent window positions land on unrelated probes.
fn mix_seed(seed: u64, salt: u64) -> u64 {
    let mut z = seed ^ salt.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

// Manual impl for two reasons (mirroring `RankSelection`): the derive
// cannot attach validation, and a checkpoint written before this field
// existed deserializes its absence (`Null`) as the historical `Exact`
// behaviour instead of erroring.
impl<'de> serde::de::Deserialize<'de> for FitStrategy {
    fn deserialize<D: serde::de::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        use serde::de::Error as _;
        #[derive(Deserialize)]
        struct SketchedPayload {
            rank_oversample: usize,
            power_iters: usize,
            seed: u64,
        }
        let strat = match deserializer.take_content()? {
            // Absent field in a pre-strategy checkpoint.
            serde::Content::Null => FitStrategy::Exact,
            serde::Content::Str(s) if s == "Exact" => FitStrategy::Exact,
            serde::Content::Map(mut m) if m.len() == 1 => {
                let (key, payload) = m.remove(0);
                match key.as_str() {
                    "Sketched" => {
                        let p = serde::from_content::<SketchedPayload, D::Error>(payload)?;
                        FitStrategy::Sketched {
                            rank_oversample: p.rank_oversample,
                            power_iters: p.power_iters,
                            seed: p.seed,
                        }
                    }
                    other => {
                        return Err(D::Error::custom(format!(
                            "unknown variant `{other}` of FitStrategy"
                        )))
                    }
                }
            }
            other => {
                return Err(D::Error::custom(format!(
                    "expected a FitStrategy variant, found {other:?}"
                )))
            }
        };
        strat.validate().map_err(D::Error::custom)?;
        Ok(strat)
    }
}

/// Default probe rank for a `Sketched` fit under a spectrum-adaptive rank
/// rule (`Svht` / `Energy`): the rule needs a spectrum to threshold, but
/// probing at the full `min(P, T)` would forfeit the sketch's speedup, so
/// the probe is capped here (matching the incremental path's default
/// `isvd_max_rank` headroom). `Fixed(r)` probes at `r` exactly.
pub const SKETCH_DEFAULT_PROBE: usize = 48;

/// Configuration for a single DMD fit.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct DmdConfig {
    /// Time between snapshots, in seconds.
    pub dt: f64,
    /// Truncation rule for the snapshot SVD.
    pub rank: RankSelection,
    /// How the snapshot SVD is computed (absent in old checkpoints ⇒
    /// [`FitStrategy::Exact`]).
    pub strategy: FitStrategy,
}

impl Default for DmdConfig {
    fn default() -> Self {
        DmdConfig {
            dt: 1.0,
            rank: RankSelection::Svht,
            strategy: FitStrategy::Exact,
        }
    }
}

impl DmdConfig {
    /// Checks every field's domain: `dt` must be positive and finite, and
    /// the rank selection must pass [`RankSelection::validate`]. Called by
    /// [`Dmd::try_fit`] / [`Dmd::try_from_svd`] before any numerics run.
    pub fn validate(&self) -> Result<(), CoreError> {
        let dt_ok = self.dt > 0.0 && self.dt.is_finite();
        if !dt_ok {
            return Err(CoreError::InvalidConfig {
                what: format!(
                    "snapshot spacing dt must be positive and finite, got {}",
                    self.dt
                ),
            });
        }
        self.rank.validate()?;
        self.strategy.validate()
    }

    /// Builder-first construction: every field defaults as in
    /// [`DmdConfig::default`], and [`DmdConfigBuilder::build`] runs the full
    /// domain validation, so an invalid configuration is caught at
    /// construction instead of deep inside a fit.
    ///
    /// ```
    /// use imrdmd::dmd::{DmdConfig, RankSelection};
    /// let cfg = DmdConfig::builder()
    ///     .dt(0.01)
    ///     .rank(RankSelection::Fixed(4))
    ///     .build()
    ///     .unwrap();
    /// assert_eq!(cfg.dt, 0.01);
    /// assert!(DmdConfig::builder().dt(-1.0).build().is_err());
    /// ```
    pub fn builder() -> DmdConfigBuilder {
        DmdConfigBuilder {
            cfg: DmdConfig::default(),
        }
    }
}

/// Builder for [`DmdConfig`]; see [`DmdConfig::builder`].
#[derive(Clone, Debug)]
pub struct DmdConfigBuilder {
    cfg: DmdConfig,
}

impl DmdConfigBuilder {
    /// Time between snapshots, in seconds.
    #[must_use]
    pub fn dt(mut self, dt: f64) -> Self {
        self.cfg.dt = dt;
        self
    }

    /// Truncation rule for the snapshot SVD.
    #[must_use]
    pub fn rank(mut self, rank: RankSelection) -> Self {
        self.cfg.rank = rank;
        self
    }

    /// How the snapshot SVD is computed.
    #[must_use]
    pub fn fit_strategy(mut self, strategy: FitStrategy) -> Self {
        self.cfg.strategy = strategy;
        self
    }

    /// Validates every field and returns the configuration.
    pub fn build(self) -> Result<DmdConfig, CoreError> {
        self.cfg.validate()?;
        Ok(self.cfg)
    }
}

/// An exact DMD of a snapshot sequence.
#[derive(Clone, Debug)]
pub struct Dmd {
    /// Exact DMD modes, one per column (`P × r`).
    pub modes: CMat,
    /// Discrete-time eigenvalues λ of the best-fit operator.
    pub lambdas: Vec<c64>,
    /// Continuous-time eigenvalues ψ = ln(λ)/Δt.
    pub omegas: Vec<c64>,
    /// Mode amplitudes fitted to the first snapshot.
    pub amplitudes: Vec<c64>,
    /// Snapshot spacing used for the fit.
    pub dt: f64,
    /// QR-iteration statistics of the reduced-operator eigendecomposition
    /// (zero for rank-0 fits) — surfaced through the health snapshot.
    pub eig_stats: EigStats,
}

/// Outcome of [`Dmd::try_prepare`]: the fit either resolved immediately
/// (retained rank 0) or still owes the `B = Y·vs` product.
#[derive(Clone, Debug)]
pub enum DmdPrep {
    /// Rank-0 short circuit — the decomposition is already complete.
    Done(Dmd),
    /// Deferred product; execute `B = Y·vs` and call [`Dmd::try_finish`].
    Plan(DmdPlan),
}

/// Deferred tail of a DMD fit (see [`Dmd::try_prepare`]): the rank-resolved
/// factors with the dominant `B = Y·vs` product still outstanding, so a
/// batching engine can execute many trees' products in one packed pass.
#[derive(Clone, Debug)]
pub struct DmdPlan {
    /// Truncated left basis `U` (`P × r`).
    pub u: Mat,
    /// `V·Σ⁻¹` (`T−1 × r`): right operand of the outstanding product.
    pub vs: Mat,
    dt: f64,
}

impl Dmd {
    /// Fits an exact DMD to the snapshot matrix `data` (`P × T`, `T ≥ 2`).
    ///
    /// ```
    /// use hpc_linalg::Mat;
    /// use imrdmd::dmd::{Dmd, DmdConfig, RankSelection};
    ///
    /// // A 2 Hz traveling wave sampled at 100 Hz.
    /// let dt = 0.01;
    /// let data = Mat::from_fn(16, 300, |i, j| {
    ///     (std::f64::consts::TAU * 2.0 * j as f64 * dt + i as f64 * 0.2).sin()
    /// });
    /// let cfg = DmdConfig { dt, rank: RankSelection::Fixed(2), ..DmdConfig::default() };
    /// let dmd = Dmd::fit(&data, &cfg);
    /// let f = dmd.frequencies();
    /// assert!((f[0] - 2.0).abs() < 0.05);
    /// ```
    pub fn fit(data: &Mat, cfg: &DmdConfig) -> Dmd {
        match Self::try_fit(data, cfg) {
            Ok(d) => d,
            // Preserved legacy contract: the infallible entry point aborts on
            // solver failure, as the eig/lstsq kernels themselves used to.
            #[allow(clippy::panic)]
            Err(e) => panic!("DMD fit failed: {e}"),
        }
    }

    /// Fallible twin of [`fit`](Self::fit): configuration problems surface as
    /// [`CoreError::InvalidConfig`] and solver failures (eigensolver
    /// non-convergence after its escalation ladder, rank-deficient amplitude
    /// fits) as [`CoreError::Numerical`].
    pub fn try_fit(data: &Mat, cfg: &DmdConfig) -> Result<Dmd, CoreError> {
        assert!(data.cols() >= 2, "DMD needs at least two snapshots");
        let t = data.cols();
        let x = data.cols_range(0, t - 1);
        let y = data.cols_range(1, t);
        let svd_x = match cfg.strategy {
            FitStrategy::Exact => {
                // Oversize the probe a little so SVHT has spectrum to
                // threshold.
                let probe = match cfg.rank {
                    RankSelection::Fixed(r) => r,
                    _ => x.rows().min(x.cols()),
                };
                svd_truncated(&x, probe.max(1))
            }
            FitStrategy::Sketched {
                rank_oversample,
                power_iters,
                seed,
            } => {
                // Adaptive rank rules threshold within the sketched
                // spectrum, probed at the bounded default instead of the
                // full min-dimension (see `SKETCH_DEFAULT_PROBE`).
                let probe = match cfg.rank {
                    RankSelection::Fixed(r) => r,
                    _ => SKETCH_DEFAULT_PROBE.min(x.rows().min(x.cols())),
                };
                svd_sketched(&x, probe.max(1), rank_oversample, power_iters, seed)
            }
        };
        Self::try_from_svd(&svd_x, &y, data, cfg)
    }

    /// Fits a DMD reusing a precomputed (possibly incrementally maintained)
    /// SVD of `X`. `y` must be the one-step-shifted snapshots and `data` the
    /// full matrix (used only for the amplitude fit against column 0).
    ///
    /// This is the entry point of the incremental path: the expensive SVD is
    /// inherited, and everything below is `O(P·r² + r³)`.
    pub fn from_svd(svd_x: &Svd, y: &Mat, data: &Mat, cfg: &DmdConfig) -> Dmd {
        match Self::try_from_svd(svd_x, y, data, cfg) {
            Ok(d) => d,
            // Preserved legacy contract, mirroring `fit`.
            #[allow(clippy::panic)]
            Err(e) => panic!("DMD fit failed: {e}"),
        }
    }

    /// Fallible twin of [`from_svd`](Self::from_svd); see
    /// [`try_fit`](Self::try_fit) for the error contract.
    ///
    /// Internally this is [`try_prepare`](Self::try_prepare) → the `B = Y·vs`
    /// product → [`try_finish`](Self::try_finish); the batched execution
    /// engine drives the same three stages with the product executed in a
    /// cross-tree GEMM batch, so the two paths are bitwise interchangeable.
    pub fn try_from_svd(
        svd_x: &Svd,
        y: &Mat,
        data: &Mat,
        cfg: &DmdConfig,
    ) -> Result<Dmd, CoreError> {
        match Self::try_prepare(svd_x, y, cfg)? {
            DmdPrep::Done(d) => Ok(d),
            DmdPrep::Plan(plan) => {
                let b = y.matmul(&plan.vs);
                Self::try_finish(&plan, &b, data)
            }
        }
    }

    /// First stage of [`try_from_svd`](Self::try_from_svd): validates the
    /// configuration, resolves the retained rank, and either completes
    /// immediately (rank 0) or returns a [`DmdPlan`] whose outstanding
    /// `B = Y·vs` product the caller executes — directly or inside a
    /// cross-tree [`gemm_batch`](hpc_linalg::gemm_batch).
    pub fn try_prepare(svd_x: &Svd, y: &Mat, cfg: &DmdConfig) -> Result<DmdPrep, CoreError> {
        Self::try_prepare_parts(&svd_x.u, &svd_x.s, &svd_x.v, y, cfg)
    }

    /// Borrowed-factor twin of [`try_prepare`](Self::try_prepare): takes the
    /// SVD of `X` as its parts, so an incrementally maintained factorisation
    /// (whose `u`/`s`/`v` live inside the streaming state) can feed a fit
    /// without first being cloned into an owned [`Svd`].
    pub fn try_prepare_parts(
        u_x: &Mat,
        s_x: &[f64],
        v_x: &Mat,
        y: &Mat,
        cfg: &DmdConfig,
    ) -> Result<DmdPrep, CoreError> {
        cfg.validate()?;
        let p = y.rows();
        let r = cfg.rank.resolve(s_x, p, v_x.rows());
        // Never exceed the numerical rank of X: directions with negligible
        // singular values carry no dynamics, only amplified noise
        // (`Svd::numerical_rank` at tol 1e-10, inlined for the slice form).
        let s0 = s_x.first().copied().unwrap_or(0.0);
        let num_rank = s_x.iter().take_while(|&&x| x > 1e-10 * s0).count();
        let r = r.min(num_rank);
        if r == 0 {
            return Ok(DmdPrep::Done(Dmd {
                modes: CMat::zeros(p, 0),
                lambdas: vec![],
                omegas: vec![],
                amplitudes: vec![],
                dt: cfg.dt,
                eig_stats: EigStats::default(),
            }));
        }
        let u = u_x.cols_range(0, r);
        let v = v_x.cols_range(0, r);
        let sinv: Vec<f64> = s_x[..r]
            .iter()
            .map(|&x| if x > 0.0 { 1.0 / x } else { 0.0 })
            .collect();
        // B = Y·V·Σ⁻¹ (P × r): shared by Ã and the exact modes. The plan
        // carries V·Σ⁻¹ so B itself can be computed in a batch.
        let vs = scale_cols_real(&v, &sinv);
        Ok(DmdPrep::Plan(DmdPlan { u, vs, dt: cfg.dt }))
    }

    /// Final stage of [`try_from_svd`](Self::try_from_svd): consumes the
    /// plan together with the computed product `b = Y·vs` (`P × r`) and the
    /// full snapshot matrix (first column feeds the amplitude fit).
    pub fn try_finish(plan: &DmdPlan, b: &Mat, data: &Mat) -> Result<Dmd, CoreError> {
        let r = plan.u.cols();
        let a_tilde = plan.u.t_matmul(b); // r × r
        let eig = try_eig_real(&a_tilde).map_err(|e| CoreError::Numerical {
            context: format!("eigendecomposition of the {r}×{r} reduced operator"),
            source: e,
        })?;
        // Exact modes Φ = B·W.
        let modes = CMat::from_real(b).matmul(&eig.vectors);
        let lambdas = eig.values;
        let omegas: Vec<c64> = lambdas
            .iter()
            .map(|&l| {
                if l.abs() < 1e-300 {
                    // A zero eigenvalue is a dead mode; park it far in the
                    // left half-plane so exp(ψt) vanishes.
                    c64::new(-1e6, 0.0)
                } else {
                    l.ln() / plan.dt
                }
            })
            .collect();
        // Amplitudes from the first snapshot: min ‖Φ·a − x₀‖.
        let x0: Vec<c64> = data.col(0).into_iter().map(c64::from_real).collect();
        let amplitudes = if modes.cols() > 0 {
            try_lstsq_complex(&modes, &x0).map_err(|e| CoreError::Numerical {
                context: "mode-amplitude least squares against the first snapshot".to_string(),
                source: e,
            })?
        } else {
            vec![]
        };
        Ok(Dmd {
            modes,
            lambdas,
            omegas,
            amplitudes,
            dt: plan.dt,
            eig_stats: eig.stats,
        })
    }

    /// Number of retained modes.
    pub fn rank(&self) -> usize {
        self.lambdas.len()
    }

    /// Oscillation frequency of each mode in Hz (Eq. 9): `|Im ψ| / 2π`.
    pub fn frequencies(&self) -> Vec<f64> {
        self.omegas
            .iter()
            .map(|w| w.im.abs() / (2.0 * std::f64::consts::PI))
            .collect()
    }

    /// Mode powers `‖φᵢ‖₂²` (Eq. 10).
    pub fn powers(&self) -> Vec<f64> {
        (0..self.modes.cols())
            .map(|j| self.modes.col_norm_sqr(j))
            .collect()
    }

    /// Growth rates `Re ψ` (positive = growing, negative = decaying).
    pub fn growth_rates(&self) -> Vec<f64> {
        self.omegas.iter().map(|w| w.re).collect()
    }

    /// Reconstructs snapshots at the given times (seconds, relative to the
    /// first fitted snapshot): `x(t) = Re Σ φᵢ·exp(ψᵢ t)·aᵢ` (Eq. 6).
    pub fn reconstruct_at(&self, times: &[f64]) -> Mat {
        let p = self.modes.rows();
        let mut out = Mat::zeros(p, times.len());
        if self.rank() == 0 {
            return out;
        }
        for (jt, &t) in times.iter().enumerate() {
            let weights: Vec<c64> = self
                .omegas
                .iter()
                .zip(&self.amplitudes)
                .map(|(&w, &a)| (w * t).exp() * a)
                .collect();
            for i in 0..p {
                let row = self.modes.row(i);
                let mut acc = c64::ZERO;
                for (&phi, &w) in row.iter().zip(&weights) {
                    acc = acc.mul_add(phi, w);
                }
                out[(i, jt)] = acc.re;
            }
        }
        out
    }

    /// Reconstructs `n` uniformly spaced snapshots starting at t = 0.
    pub fn reconstruct(&self, n: usize) -> Mat {
        let times: Vec<f64> = (0..n).map(|k| k as f64 * self.dt).collect();
        self.reconstruct_at(&times)
    }
}

/// Sparsity-promoting amplitude selection (Jovanović, Schmid & Nichols 2014
/// — the paper's ref. \[44\]): re-fits mode amplitudes under an ℓ₁ penalty so
/// that weak modes drop to exactly zero, via ISTA (iterative
/// shrinkage-thresholding) on `min ‖Φa − x₀‖² + γ‖a‖₁`.
///
/// Returns the sparse amplitudes; entries equal to zero mark discarded
/// modes. Larger `gamma` discards more aggressively.
pub fn sparse_amplitudes(modes: &CMat, x0: &[f64], gamma: f64, iters: usize) -> Vec<c64> {
    assert_eq!(modes.rows(), x0.len());
    assert!(gamma >= 0.0);
    let k = modes.cols();
    if k == 0 {
        return vec![];
    }
    let b: Vec<c64> = x0.iter().map(|&v| c64::from_real(v)).collect();
    // Lipschitz constant of ∇‖Φa − b‖² is 2·σ_max(Φ)² ≤ 2·‖Φ‖_F².
    let lip = 2.0 * modes.fro_norm().powi(2).max(1e-12);
    let step = 1.0 / lip;
    let mut a = lstsq_complex(modes, &b);
    for _ in 0..iters {
        // Gradient step: a ← a − step · 2Φᴴ(Φa − b).
        let residual: Vec<c64> = modes
            .matvec(&a)
            .iter()
            .zip(&b)
            .map(|(&r, &bb)| r - bb)
            .collect();
        let grad = modes.h_matvec(&residual);
        for (ai, g) in a.iter_mut().zip(&grad) {
            *ai -= *g * (2.0 * step);
        }
        // Proximal step: complex soft threshold by step·γ.
        let th = step * gamma;
        for ai in &mut a {
            let m = ai.abs();
            *ai = if m <= th {
                c64::ZERO
            } else {
                *ai * ((m - th) / m)
            };
        }
    }
    a
}

/// Scales column `j` of a real matrix by `d[j]`.
fn scale_cols_real(m: &Mat, d: &[f64]) -> Mat {
    assert_eq!(m.cols(), d.len());
    let mut out = m.clone();
    for i in 0..out.rows() {
        for (x, &s) in out.row_mut(i).iter_mut().zip(d) {
            *x *= s;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two-oscillator synthetic system with known frequencies f1, f2 (Hz).
    ///
    /// Traveling waves: each frequency spans a two-dimensional invariant
    /// subspace (sin and cos components with distinct spatial patterns), so
    /// the dynamics are exactly representable by a linear operator — a
    /// standing wave `sin(ωt)·g(x)` would be spatially rank-1 and is not.
    fn oscillator_data(p: usize, t: usize, dt: f64, f1: f64, f2: f64) -> Mat {
        Mat::from_fn(p, t, |i, j| {
            let x = i as f64 / p as f64;
            let tt = j as f64 * dt;
            (2.0 * std::f64::consts::PI * f1 * tt + 3.0 * x).sin()
                + 0.5 * (2.0 * std::f64::consts::PI * f2 * tt + 7.0 * x).cos()
        })
    }

    #[test]
    fn recovers_planted_frequencies() {
        let dt = 0.01;
        let data = oscillator_data(32, 400, dt, 2.0, 7.0);
        let dmd = Dmd::fit(
            &data,
            &DmdConfig {
                dt,
                rank: RankSelection::Fixed(4),
                ..DmdConfig::default()
            },
        );
        let mut freqs = dmd.frequencies();
        freqs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        // Conjugate pairs: expect {2, 2, 7, 7}.
        assert!((freqs[0] - 2.0).abs() < 0.05, "freqs {freqs:?}");
        assert!((freqs[1] - 2.0).abs() < 0.05);
        assert!((freqs[2] - 7.0).abs() < 0.05);
        assert!((freqs[3] - 7.0).abs() < 0.05);
    }

    #[test]
    fn pure_oscillations_have_unit_eigenvalues() {
        let dt = 0.02;
        let data = oscillator_data(16, 300, dt, 1.0, 4.0);
        let dmd = Dmd::fit(
            &data,
            &DmdConfig {
                dt,
                rank: RankSelection::Fixed(4),
                ..DmdConfig::default()
            },
        );
        for &l in &dmd.lambdas {
            assert!((l.abs() - 1.0).abs() < 1e-6, "|λ| = {}", l.abs());
        }
    }

    #[test]
    fn reconstruction_matches_clean_signal() {
        let dt = 0.01;
        let data = oscillator_data(24, 256, dt, 3.0, 9.0);
        let dmd = Dmd::fit(
            &data,
            &DmdConfig {
                dt,
                rank: RankSelection::Fixed(4),
                ..DmdConfig::default()
            },
        );
        let rec = dmd.reconstruct(256);
        let rel = rec.fro_dist(&data) / data.fro_norm();
        assert!(rel < 1e-6, "relative reconstruction error {rel}");
    }

    #[test]
    fn decaying_mode_has_negative_growth() {
        let dt = 0.05;
        let data = Mat::from_fn(8, 200, |i, j| {
            let tt = j as f64 * dt;
            (-0.5 * tt).exp() * ((i as f64) * 0.7).sin()
        });
        let dmd = Dmd::fit(
            &data,
            &DmdConfig {
                dt,
                rank: RankSelection::Fixed(1),
                ..DmdConfig::default()
            },
        );
        assert_eq!(dmd.rank(), 1);
        assert!(
            (dmd.omegas[0].re + 0.5).abs() < 1e-6,
            "growth {}",
            dmd.omegas[0].re
        );
        assert!(dmd.omegas[0].im.abs() < 1e-8);
    }

    #[test]
    fn svht_rank_matches_signal_complexity() {
        let dt = 0.01;
        let clean = oscillator_data(40, 300, dt, 2.0, 6.0);
        // Add a small white-ish noise floor (splitmix-style hash for good
        // per-entry decorrelation).
        let data = Mat::from_fn(40, 300, |i, j| {
            let mut h = (i as u64)
                .wrapping_mul(0x9e3779b97f4a7c15)
                .wrapping_add((j as u64).wrapping_mul(0xbf58476d1ce4e5b9));
            h ^= h >> 30;
            h = h.wrapping_mul(0xbf58476d1ce4e5b9);
            h ^= h >> 27;
            clean[(i, j)] + 1e-4 * ((h % 10_000) as f64 / 10_000.0 - 0.5)
        });
        let dmd = Dmd::fit(
            &data,
            &DmdConfig {
                dt,
                rank: RankSelection::Svht,
                ..DmdConfig::default()
            },
        );
        // Two oscillators = 4 complex modes; SVHT should land close.
        assert!(dmd.rank() >= 4 && dmd.rank() <= 10, "rank {}", dmd.rank());
    }

    #[test]
    fn energy_rank_selection_caps_spectrum() {
        let s = vec![10.0, 5.0, 1.0, 0.1];
        let r = RankSelection::Energy(0.9).resolve(&s, 100, 4);
        // 10² = 100 of total 126.01 → 79%; +5² → 99.2% ≥ 90% at rank 2.
        assert_eq!(r, 2);
        assert_eq!(RankSelection::Energy(1.0).resolve(&s, 100, 4), 4);
        assert_eq!(RankSelection::Fixed(3).resolve(&s, 100, 4), 3);
    }

    #[test]
    fn energy_validation_rejects_out_of_domain_fractions() {
        assert!(RankSelection::Energy(0.5).validate().is_ok());
        for bad in [0.0, -0.1, 1.5, f64::NAN] {
            assert!(RankSelection::Energy(bad).validate().is_err(), "{bad}");
            // `resolve` must stay total even on invalid fractions: it falls
            // back to keeping the full spectrum instead of panicking.
            assert_eq!(RankSelection::Energy(bad).resolve(&[3.0, 1.0], 10, 2), 2);
        }
        assert!(DmdConfig {
            dt: 0.0,
            rank: RankSelection::Svht,
            ..DmdConfig::default()
        }
        .validate()
        .is_err());
        // The wire boundary rejects invalid fractions too.
        assert!(serde_json::from_str::<RankSelection>("{\"Energy\": 2.0}").is_err());
        let ok: RankSelection = serde_json::from_str("{\"Energy\": 0.75}").unwrap();
        assert_eq!(ok, RankSelection::Energy(0.75));
        let unit: RankSelection = serde_json::from_str("\"Svht\"").unwrap();
        assert_eq!(unit, RankSelection::Svht);
        let fixed: RankSelection = serde_json::from_str("{\"Fixed\": 3}").unwrap();
        assert_eq!(fixed, RankSelection::Fixed(3));
    }

    #[test]
    fn fit_strategy_wire_boundary_and_validation() {
        // Old checkpoints carry no `strategy` field: a config without one
        // must load as `Exact` (the bitwise-compatible default).
        let legacy: DmdConfig = serde_json::from_str("{\"dt\":1.0,\"rank\":\"Svht\"}").unwrap();
        assert_eq!(legacy.strategy, FitStrategy::Exact);
        let unit: FitStrategy = serde_json::from_str("\"Exact\"").unwrap();
        assert_eq!(unit, FitStrategy::Exact);
        // Sketched round-trips through the wire format losslessly.
        let sk = FitStrategy::Sketched {
            rank_oversample: 8,
            power_iters: 2,
            seed: 0x5eed_cafe,
        };
        let wire = serde_json::to_string(&sk).unwrap();
        let back: FitStrategy = serde_json::from_str(&wire).unwrap();
        assert_eq!(back, sk);
        // The wire boundary enforces the same budget as the builder.
        let bad = "{\"Sketched\":{\"rank_oversample\":0,\"power_iters\":1,\"seed\":7}}";
        assert!(serde_json::from_str::<FitStrategy>(bad).is_err());
        let bad = "{\"Sketched\":{\"rank_oversample\":8,\"power_iters\":9,\"seed\":7}}";
        assert!(serde_json::from_str::<FitStrategy>(bad).is_err());
        // validate() rejects out-of-budget parameters directly too.
        assert!(FitStrategy::Sketched {
            rank_oversample: 70,
            power_iters: 1,
            seed: 0,
        }
        .validate()
        .is_err());
        assert!(FitStrategy::Exact.validate().is_ok());
        // Per-node seed mixing: distinct salts give distinct seeds, the same
        // salt is reproducible, and Exact is a fixed point.
        let a = sk.for_node(1);
        let b = sk.for_node(2);
        assert_ne!(a, b);
        assert_eq!(a, sk.for_node(1));
        assert_eq!(FitStrategy::Exact.for_node(99), FitStrategy::Exact);
    }

    #[test]
    fn try_fit_reports_invalid_config_as_error() {
        let data = Mat::from_fn(4, 16, |i, j| ((i + j) as f64 * 0.3).sin());
        let bad = DmdConfig {
            dt: 1.0,
            rank: RankSelection::Energy(7.0),
            ..DmdConfig::default()
        };
        match Dmd::try_fit(&data, &bad) {
            Err(CoreError::InvalidConfig { what }) => assert!(what.contains("energy fraction")),
            other => panic!("expected InvalidConfig, got {other:?}"),
        }
        let good = DmdConfig {
            dt: 1.0,
            rank: RankSelection::Fixed(2),
            ..DmdConfig::default()
        };
        let d = Dmd::try_fit(&data, &good).expect("healthy fit");
        assert!(d.rank() <= 2);
    }

    #[test]
    fn amplitudes_reproduce_first_snapshot() {
        let dt = 0.01;
        let data = oscillator_data(20, 200, dt, 2.0, 5.0);
        let dmd = Dmd::fit(
            &data,
            &DmdConfig {
                dt,
                rank: RankSelection::Fixed(4),
                ..DmdConfig::default()
            },
        );
        let rec0 = dmd.reconstruct_at(&[0.0]);
        let x0 = data.cols_range(0, 1);
        assert!(rec0.fro_dist(&x0) < 1e-8 * x0.fro_norm().max(1.0));
    }

    #[test]
    fn sparse_amplitudes_drop_weak_modes() {
        let dt = 0.01;
        // Strong 2 Hz oscillation + weak 7 Hz one.
        let data = Mat::from_fn(24, 300, |i, j| {
            let x = i as f64 / 24.0;
            let tt = j as f64 * dt;
            (2.0 * std::f64::consts::PI * 2.0 * tt + 3.0 * x).sin()
                + 0.02 * (2.0 * std::f64::consts::PI * 7.0 * tt + 7.0 * x).cos()
        });
        let dmd = Dmd::fit(
            &data,
            &DmdConfig {
                dt,
                rank: RankSelection::Fixed(4),
                ..DmdConfig::default()
            },
        );
        let x0 = data.col(0);
        let dense = sparse_amplitudes(&dmd.modes, &x0, 0.0, 200);
        let sparse = sparse_amplitudes(&dmd.modes, &x0, 5.0, 200);
        let nnz = |a: &[c64]| a.iter().filter(|z| z.abs() > 0.0).count();
        assert!(
            nnz(&sparse) < nnz(&dense).max(1) || nnz(&sparse) <= 2,
            "gamma must sparsify: dense {} vs sparse {}",
            nnz(&dense),
            nnz(&sparse)
        );
        // With zero penalty the ISTA fixed point reproduces x0 well.
        let recon = dmd.modes.matvec(&dense);
        let err: f64 = recon
            .iter()
            .zip(&x0)
            .map(|(z, &v)| (*z - c64::from_real(v)).norm_sqr())
            .sum::<f64>()
            .sqrt();
        let base: f64 = x0.iter().map(|v| v * v).sum::<f64>().sqrt();
        assert!(err < 0.05 * base, "dense refit error {err} vs {base}");
    }

    #[test]
    fn sparse_amplitudes_extreme_gamma_kills_everything() {
        let dt = 0.02;
        let data = Mat::from_fn(8, 100, |i, j| ((i + j) as f64 * 0.1).sin());
        let dmd = Dmd::fit(
            &data,
            &DmdConfig {
                dt,
                rank: RankSelection::Fixed(2),
                ..DmdConfig::default()
            },
        );
        let a = sparse_amplitudes(&dmd.modes, &data.col(0), 1e12, 50);
        assert!(a.iter().all(|z| *z == c64::ZERO));
    }

    #[test]
    fn zero_data_yields_empty_decomposition() {
        let data = Mat::zeros(5, 10);
        let dmd = Dmd::fit(&data, &DmdConfig::default());
        assert_eq!(dmd.rank(), 0);
        assert_eq!(dmd.reconstruct(10).fro_norm(), 0.0);
    }
}
