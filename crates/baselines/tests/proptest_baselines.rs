//! Property-based tests of the dimensionality-reduction comparators.

use dimred_baselines::*;
use hpc_linalg::Mat;
use proptest::prelude::*;

/// Strategy: a random `n × d` data matrix with bounded entries.
fn data_strategy() -> impl Strategy<Value = Mat> {
    (8usize..24, 3usize..8).prop_flat_map(|(n, d)| {
        proptest::collection::vec(-5.0f64..5.0, n * d).prop_map(move |v| Mat::from_vec(n, d, v))
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// PCA embeddings are centred and their component count is respected.
    #[test]
    fn pca_embedding_centred(x in data_strategy()) {
        let mut pca = Pca::new(2);
        pca.fit(&x);
        let e = pca.embedding();
        prop_assert_eq!(e.shape(), (x.rows(), 2.min(x.cols())));
        for j in 0..e.cols() {
            let mean: f64 = (0..e.rows()).map(|i| e[(i, j)]).sum::<f64>() / e.rows() as f64;
            prop_assert!(mean.abs() < 1e-8, "component {j} mean {mean}");
        }
        // Components are orthonormal.
        let g = pca.components().t_matmul(pca.components());
        prop_assert!(g.sub(&Mat::identity(g.rows())).fro_norm() < 1e-8);
    }

    /// PCA is invariant to data translation (embeddings identical up to fp
    /// noise when every sample is shifted by the same vector).
    #[test]
    fn pca_translation_invariance(x in data_strategy(), shift in -100.0f64..100.0) {
        let mut a = Pca::new(2);
        a.fit(&x);
        let shifted = Mat::from_fn(x.rows(), x.cols(), |i, j| x[(i, j)] + shift);
        let mut b = Pca::new(2);
        b.fit(&shifted);
        // Embeddings match up to per-column sign.
        for j in 0..2.min(x.cols()) {
            let dot: f64 = (0..x.rows()).map(|i| a.embedding()[(i, j)] * b.embedding()[(i, j)]).sum();
            let sign = if dot >= 0.0 { 1.0 } else { -1.0 };
            for i in 0..x.rows() {
                let d = a.embedding()[(i, j)] - sign * b.embedding()[(i, j)];
                prop_assert!(d.abs() < 1e-6 * (1.0 + a.embedding()[(i, j)].abs()), "row {i} comp {j}: {d}");
            }
        }
    }

    /// IPCA absorbs any chunking into the same running mean and a consistent
    /// sample count.
    #[test]
    fn ipca_chunking_invariants(x in data_strategy(), batch in 1usize..9) {
        let mut ipca = IncrementalPca::new(2);
        ipca.fit(&x, batch);
        prop_assert_eq!(ipca.n_samples_seen(), x.rows());
        for j in 0..x.cols() {
            let exact: f64 = (0..x.rows()).map(|i| x[(i, j)]).sum::<f64>() / x.rows() as f64;
            prop_assert!((ipca.mean()[j] - exact).abs() < 1e-9);
        }
        let t = ipca.transform(&x);
        prop_assert!(t.as_slice().iter().all(|v| v.is_finite()));
    }

    /// t-SNE and UMAP always return finite embeddings of the right shape on
    /// arbitrary data.
    #[test]
    fn manifold_methods_stay_finite(x in data_strategy()) {
        let t = Tsne::fit(&x, &TsneConfig { n_iter: 30, perplexity: 4.0, ..Default::default() });
        prop_assert_eq!(t.embedding().shape(), (x.rows(), 2));
        prop_assert!(t.embedding().as_slice().iter().all(|v| v.is_finite()));
        let u = Umap::fit(&x, &UmapConfig { n_neighbors: 4, n_epochs: 20, ..Default::default() });
        prop_assert_eq!(u.embedding().shape(), (x.rows(), 2));
        prop_assert!(u.embedding().as_slice().iter().all(|v| v.is_finite()));
    }

    /// Aligned-UMAP partial fits never change the sample count and always
    /// stay finite.
    #[test]
    fn aligned_umap_partial_fit_invariants(x in data_strategy()) {
        let mut au = AlignedUmap::new(UmapConfig { n_neighbors: 4, n_epochs: 20, ..Default::default() });
        au.fit(&x);
        let n = au.embedding().unwrap().rows();
        au.partial_fit(&x);
        prop_assert_eq!(au.embedding().unwrap().rows(), n);
        prop_assert_eq!(au.n_fits(), 2);
        prop_assert!(au.embedding().unwrap().as_slice().iter().all(|v| v.is_finite()));
    }
}
