//! Simplified UMAP (McInnes et al. 2018).
//!
//! Exact kNN graph + fuzzy simplicial set + negative-sampling SGD over the
//! cross-entropy objective. The `a`, `b` curve coefficients are the standard
//! fitted values for `min_dist = 0.1`, `spread = 1.0` — the settings the
//! paper uses. Suitable for the thousands-of-points regime of the
//! evaluation; no approximate-NN structures are needed at that scale.

use crate::common::{knn_from_dists, pairwise_sq_dists};
use crate::pca::Pca;
use hpc_linalg::Mat;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// UMAP hyper-parameters (defaults follow the paper: `n_neighbors = 15`,
/// `min_dist = 0.1`, Euclidean metric, two components).
#[derive(Clone, Copy, Debug)]
pub struct UmapConfig {
    /// kNN graph size.
    pub n_neighbors: usize,
    /// Output dimensionality.
    pub n_components: usize,
    /// Curve coefficient `a` (fitted for min_dist = 0.1).
    pub a: f64,
    /// Curve coefficient `b` (fitted for min_dist = 0.1).
    pub b: f64,
    /// SGD epochs.
    pub n_epochs: usize,
    /// Initial SGD step size (decays linearly to zero).
    pub learning_rate: f64,
    /// Negative samples per positive edge.
    pub negative_samples: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for UmapConfig {
    fn default() -> Self {
        UmapConfig {
            n_neighbors: 15,
            n_components: 2,
            a: 1.577,
            b: 0.8951,
            n_epochs: 200,
            learning_rate: 1.0,
            negative_samples: 5,
            seed: 0,
        }
    }
}

/// One weighted edge of the fuzzy simplicial set.
#[derive(Clone, Copy, Debug)]
struct Edge {
    i: u32,
    j: u32,
    weight: f64,
}

/// Fitted UMAP embedding.
#[derive(Clone, Debug)]
pub struct Umap {
    /// Configuration used.
    pub config: UmapConfig,
    embedding: Mat,
}

impl Umap {
    /// Runs UMAP on `x` (`n_samples × n_features`).
    pub fn fit(x: &Mat, config: &UmapConfig) -> Umap {
        let init = pca_init(x, config.n_components);
        Umap::fit_from_init(x, init, config, config.n_epochs, None)
    }

    /// Runs UMAP from a given initial embedding, optionally anchored toward
    /// reference positions with a spring of strength `anchor.1` — the
    /// mechanism Aligned-UMAP uses to keep successive embeddings comparable.
    pub fn fit_from_init(
        x: &Mat,
        mut y: Mat,
        config: &UmapConfig,
        n_epochs: usize,
        anchor: Option<(&Mat, f64)>,
    ) -> Umap {
        let n = x.rows();
        assert!(n >= 4, "UMAP needs at least a handful of samples");
        assert_eq!(y.rows(), n);
        assert_eq!(y.cols(), config.n_components);
        if let Some((anchor_pos, _)) = anchor {
            assert_eq!(anchor_pos.shape(), y.shape());
        }
        let edges = fuzzy_simplicial_set(x, config.n_neighbors);
        let max_w = edges
            .iter()
            .map(|e| e.weight)
            .fold(0.0f64, f64::max)
            .max(1e-12);
        let mut rng = StdRng::seed_from_u64(config.seed ^ 0x554d_4150);
        let k = config.n_components;
        let (a, b) = (config.a, config.b);
        for epoch in 0..n_epochs {
            let alpha = config.learning_rate * (1.0 - epoch as f64 / n_epochs.max(1) as f64);
            for e in &edges {
                // Sample each edge proportionally to its membership weight.
                if rng.random::<f64>() > e.weight / max_w {
                    continue;
                }
                let (i, j) = (e.i as usize, e.j as usize);
                // Attraction along the edge.
                let d2 = sq_dist_rows(&y, i, j);
                if d2 > 0.0 {
                    let g = (-2.0 * a * b * d2.powf(b - 1.0)) / (1.0 + a * d2.powf(b));
                    apply_force(&mut y, i, j, g, alpha, k);
                }
                // Repulsion from random non-neighbours.
                for _ in 0..config.negative_samples {
                    let m = rng.random_range(0..n);
                    if m == i {
                        continue;
                    }
                    let d2 = sq_dist_rows(&y, i, m);
                    let g = (2.0 * b) / ((0.001 + d2) * (1.0 + a * d2.powf(b)));
                    apply_force_one_sided(&mut y, i, m, g, alpha, k);
                }
            }
            // Anchor springs (Aligned-UMAP regularisation).
            if let Some((anchor_pos, lambda)) = anchor {
                for i in 0..n {
                    for c in 0..k {
                        let pull = lambda * (anchor_pos[(i, c)] - y[(i, c)]);
                        y[(i, c)] += alpha * pull;
                    }
                }
            }
        }
        Umap {
            config: *config,
            embedding: y,
        }
    }

    /// The embedded samples (`n × n_components`).
    pub fn embedding(&self) -> &Mat {
        &self.embedding
    }
}

/// PCA initialisation scaled into the UMAP working box (±10).
pub(crate) fn pca_init(x: &Mat, k: usize) -> Mat {
    let n = x.rows();
    let mut pca = Pca::new(k.min(x.cols()).max(1));
    pca.fit(x);
    let scores = pca.embedding();
    let spread = scores.max_abs().max(1e-12);
    Mat::from_fn(n, k, |i, j| {
        if j < scores.cols() {
            scores[(i, j)] / spread * 10.0
        } else {
            0.0
        }
    })
}

/// Builds the symmetrised fuzzy simplicial set (UMAP §3.1): per-point
/// smooth-kNN calibration, then probabilistic t-conorm symmetrisation.
fn fuzzy_simplicial_set(x: &Mat, n_neighbors: usize) -> Vec<Edge> {
    let n = x.rows();
    let d2 = pairwise_sq_dists(x);
    let knn = knn_from_dists(&d2, n_neighbors);
    let k = knn[0].len().max(1);
    let target = (k as f64).log2().max(1e-3);
    // Directed memberships.
    let mut w = vec![std::collections::HashMap::<u32, f64>::new(); n];
    for i in 0..n {
        let dists: Vec<f64> = knn[i].iter().map(|&j| d2[(i, j)].sqrt()).collect();
        let rho = dists.iter().copied().fold(f64::INFINITY, f64::min).max(0.0);
        // Binary search σ so Σ exp(−max(0, d−ρ)/σ) = log2(k).
        let (mut lo, mut hi) = (1e-8f64, 1e4f64);
        let mut sigma = 1.0;
        for _ in 0..64 {
            sigma = 0.5 * (lo + hi);
            let s: f64 = dists
                .iter()
                .map(|&d| (-((d - rho).max(0.0)) / sigma).exp())
                .sum();
            if (s - target).abs() < 1e-5 {
                break;
            }
            if s > target {
                hi = sigma;
            } else {
                lo = sigma;
            }
        }
        for (&j, &d) in knn[i].iter().zip(&dists) {
            let v = (-((d - rho).max(0.0)) / sigma).exp();
            w[i].insert(j as u32, v);
        }
    }
    // Symmetrise: w_sym = w + wᵀ − w∘wᵀ, each undirected edge once.
    let mut acc: std::collections::HashMap<(u32, u32), (f64, f64)> =
        std::collections::HashMap::new();
    for (i, map) in w.iter().enumerate() {
        for (&j, &wij) in map {
            let key = ((i as u32).min(j), (i as u32).max(j));
            let slot = acc.entry(key).or_insert((0.0, 0.0));
            if (i as u32) < j {
                slot.0 = wij;
            } else {
                slot.1 = wij;
            }
        }
    }
    let mut edges: Vec<Edge> = acc
        .into_iter()
        .filter_map(|((i, j), (a, b))| {
            let weight = a + b - a * b;
            (weight > 1e-8).then_some(Edge { i, j, weight })
        })
        .collect();
    // Deterministic iteration order for reproducible SGD.
    edges.sort_by_key(|e| (e.i, e.j));
    edges
}

#[inline]
fn sq_dist_rows(y: &Mat, i: usize, j: usize) -> f64 {
    y.row(i)
        .iter()
        .zip(y.row(j))
        .map(|(&a, &b)| {
            let d = a - b;
            d * d
        })
        .sum()
}

/// Symmetric attractive update with the standard ±4 gradient clip.
fn apply_force(y: &mut Mat, i: usize, j: usize, g: f64, alpha: f64, k: usize) {
    for c in 0..k {
        let delta = (g * (y[(i, c)] - y[(j, c)])).clamp(-4.0, 4.0);
        y[(i, c)] += alpha * delta;
        y[(j, c)] -= alpha * delta;
    }
}

/// Repulsive update applied to the head point only (umap-learn convention).
fn apply_force_one_sided(y: &mut Mat, i: usize, m: usize, g: f64, alpha: f64, k: usize) {
    for c in 0..k {
        let delta = (g * (y[(i, c)] - y[(m, c)])).clamp(-4.0, 4.0);
        y[(i, c)] += alpha * delta;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_blobs(n_per: usize) -> Mat {
        Mat::from_fn(2 * n_per, 4, |i, j| {
            let blob = if i < n_per { 0.0 } else { 15.0 };
            blob + ((i * 53 + j * 29) % 71) as f64 / 71.0
        })
    }

    #[test]
    fn separates_two_blobs() {
        let n_per = 25;
        let x = two_blobs(n_per);
        let u = Umap::fit(
            &x,
            &UmapConfig {
                n_neighbors: 8,
                n_epochs: 150,
                ..Default::default()
            },
        );
        let e = u.embedding();
        let centroid = |r: std::ops::Range<usize>| {
            let n = r.len() as f64;
            (
                r.clone().map(|i| e[(i, 0)]).sum::<f64>() / n,
                r.map(|i| e[(i, 1)]).sum::<f64>() / n,
            )
        };
        let (ax, ay) = centroid(0..n_per);
        let (bx, by) = centroid(n_per..2 * n_per);
        let sep = ((ax - bx).powi(2) + (ay - by).powi(2)).sqrt();
        let spread: f64 = (0..n_per)
            .map(|i| ((e[(i, 0)] - ax).powi(2) + (e[(i, 1)] - ay).powi(2)).sqrt())
            .sum::<f64>()
            / n_per as f64;
        assert!(sep > spread, "separation {sep} vs spread {spread}");
    }

    #[test]
    fn fuzzy_set_weights_in_unit_interval() {
        let x = two_blobs(15);
        let edges = fuzzy_simplicial_set(&x, 5);
        assert!(!edges.is_empty());
        for e in &edges {
            assert!(
                e.weight > 0.0 && e.weight <= 1.0 + 1e-9,
                "weight {}",
                e.weight
            );
            assert_ne!(e.i, e.j);
        }
    }

    #[test]
    fn embedding_finite_and_shaped() {
        let x = two_blobs(10);
        let u = Umap::fit(
            &x,
            &UmapConfig {
                n_neighbors: 5,
                n_epochs: 40,
                ..Default::default()
            },
        );
        assert_eq!(u.embedding().shape(), (20, 2));
        assert!(u.embedding().as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let x = two_blobs(10);
        let cfg = UmapConfig {
            n_neighbors: 5,
            n_epochs: 40,
            ..Default::default()
        };
        let a = Umap::fit(&x, &cfg);
        let b = Umap::fit(&x, &cfg);
        assert!(a.embedding().fro_dist(b.embedding()) < 1e-12);
    }

    #[test]
    fn anchoring_keeps_embedding_near_reference() {
        let x = two_blobs(10);
        let cfg = UmapConfig {
            n_neighbors: 5,
            n_epochs: 60,
            ..Default::default()
        };
        let base = Umap::fit(&x, &cfg);
        let anchored = Umap::fit_from_init(
            &x,
            base.embedding().clone(),
            &cfg,
            30,
            Some((base.embedding(), 5.0)),
        );
        let drift_anchored = anchored.embedding().fro_dist(base.embedding());
        let free = Umap::fit_from_init(&x, base.embedding().clone(), &cfg, 30, None);
        let drift_free = free.embedding().fro_dist(base.embedding());
        assert!(
            drift_anchored <= drift_free + 1e-9,
            "anchored drift {drift_anchored} vs free {drift_free}"
        );
    }
}
