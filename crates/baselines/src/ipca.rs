//! Incremental PCA (Ross et al. 2008), the `sklearn.decomposition
//! .IncrementalPCA` counterpart: the paper reports IPCA as the one method
//! whose partial fit beats I-mrDMD.

use hpc_linalg::{svd, svd_truncated, Mat};

/// Streaming PCA with mean tracking.
#[derive(Clone, Debug)]
pub struct IncrementalPca {
    /// Output dimensionality.
    pub n_components: usize,
    mean: Vec<f64>,
    /// `d × k` principal directions.
    components: Mat,
    singular_values: Vec<f64>,
    n_samples_seen: usize,
}

impl IncrementalPca {
    /// Creates an unfitted incremental PCA.
    pub fn new(n_components: usize) -> IncrementalPca {
        assert!(n_components >= 1);
        IncrementalPca {
            n_components,
            mean: vec![],
            components: Mat::zeros(0, 0),
            singular_values: vec![],
            n_samples_seen: 0,
        }
    }

    /// Convenience batch fit: feeds `x` through `partial_fit` in chunks of
    /// `batch_size` (sklearn semantics).
    pub fn fit(&mut self, x: &Mat, batch_size: usize) {
        assert!(batch_size >= 1);
        let mut start = 0;
        while start < x.rows() {
            let hi = (start + batch_size).min(x.rows());
            self.partial_fit(&x.rows_range(start, hi));
            start = hi;
        }
    }

    /// Folds a batch of new samples (`n × d`) into the model (Ross et al.
    /// mean-corrected incremental SVD).
    pub fn partial_fit(&mut self, x: &Mat) {
        let n = x.rows();
        if n == 0 {
            return;
        }
        let d = x.cols();
        if self.n_samples_seen == 0 {
            self.mean = vec![0.0; d];
        }
        assert_eq!(d, self.mean.len(), "feature count mismatch");

        // Updated running mean.
        let n_old = self.n_samples_seen as f64;
        let n_new = n as f64;
        let batch_mean: Vec<f64> = (0..d)
            .map(|j| (0..n).map(|i| x[(i, j)]).sum::<f64>() / n_new)
            .collect();
        let total = n_old + n_new;
        let updated_mean: Vec<f64> = self
            .mean
            .iter()
            .zip(&batch_mean)
            .map(|(&m0, &mb)| (m0 * n_old + mb * n_new) / total)
            .collect();

        // Centered batch plus the mean-correction row.
        let mut centered = x.clone();
        for i in 0..n {
            for (v, &m) in centered.row_mut(i).iter_mut().zip(&batch_mean) {
                *v -= m;
            }
        }
        let corr_scale = (n_old * n_new / total).sqrt();
        let correction: Vec<f64> = self
            .mean
            .iter()
            .zip(&batch_mean)
            .map(|(&m0, &mb)| corr_scale * (m0 - mb))
            .collect();

        // Stack [Σ·Vᵀ ; centered ; correction] and re-SVD.
        let k_prev = self.singular_values.len();
        let mut stack = Mat::zeros(k_prev + n + 1, d);
        for r in 0..k_prev {
            let s = self.singular_values[r];
            for j in 0..d {
                stack[(r, j)] = s * self.components[(j, r)];
            }
        }
        for i in 0..n {
            stack.row_mut(k_prev + i).copy_from_slice(centered.row(i));
        }
        stack.row_mut(k_prev + n).copy_from_slice(&correction);

        let k = self.n_components.min(stack.rows().min(d));
        let f = if k + 10 < stack.rows().min(d) / 2 && stack.rows().min(d) > 64 {
            svd_truncated(&stack, k)
        } else {
            svd(&stack).truncate(k)
        };
        self.components = f.v;
        self.singular_values = f.s;
        self.mean = updated_mean;
        self.n_samples_seen += n;
    }

    /// Samples absorbed so far.
    pub fn n_samples_seen(&self) -> usize {
        self.n_samples_seen
    }

    /// Projects samples into the fitted space (`n × k`).
    pub fn transform(&self, x: &Mat) -> Mat {
        assert!(self.n_samples_seen > 0, "transform before fit");
        assert_eq!(x.cols(), self.mean.len());
        let mut c = x.clone();
        for i in 0..c.rows() {
            for (v, &m) in c.row_mut(i).iter_mut().zip(&self.mean) {
                *v -= m;
            }
        }
        c.matmul(&self.components)
    }

    /// The fitted principal directions (`d × k`).
    pub fn components(&self) -> &Mat {
        &self.components
    }

    /// Running feature means.
    pub fn mean(&self) -> &[f64] {
        &self.mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pca::Pca;

    fn cloud(n: usize, d: usize) -> Mat {
        Mat::from_fn(n, d, |i, j| {
            let t = i as f64 * 0.1;
            (t + j as f64).sin() * (j as f64 + 1.0)
                + 0.05 * (((i * 31 + j * 17) % 101) as f64 / 101.0 - 0.5)
        })
    }

    #[test]
    fn matches_batch_pca_subspace() {
        let x = cloud(150, 8);
        let mut ipca = IncrementalPca::new(2);
        ipca.fit(&x, 30);
        let mut pca = Pca::new(2);
        pca.fit(&x);
        // Compare spanned subspaces via principal angles: ‖V1ᵀV2‖ should have
        // singular values ≈ 1.
        let cross = ipca.components().t_matmul(pca.components());
        let f = hpc_linalg::svd(&cross);
        for &s in &f.s {
            assert!(s > 0.98, "principal angle cosine {s}");
        }
    }

    #[test]
    fn running_mean_is_exact() {
        let x = cloud(97, 5);
        let mut ipca = IncrementalPca::new(2);
        ipca.fit(&x, 13);
        for j in 0..5 {
            let exact: f64 = (0..97).map(|i| x[(i, j)]).sum::<f64>() / 97.0;
            assert!((ipca.mean()[j] - exact).abs() < 1e-10);
        }
        assert_eq!(ipca.n_samples_seen(), 97);
    }

    #[test]
    fn chunking_does_not_change_the_subspace_much() {
        let x = cloud(120, 6);
        let mut a = IncrementalPca::new(2);
        a.fit(&x, 10);
        let mut b = IncrementalPca::new(2);
        b.fit(&x, 60);
        let cross = a.components().t_matmul(b.components());
        let f = hpc_linalg::svd(&cross);
        for &s in &f.s {
            assert!(s > 0.95, "chunking sensitivity: cosine {s}");
        }
    }

    #[test]
    fn empty_batch_is_noop() {
        let x = cloud(20, 4);
        let mut ipca = IncrementalPca::new(2);
        ipca.fit(&x, 20);
        let before = ipca.n_samples_seen();
        ipca.partial_fit(&Mat::zeros(0, 4));
        assert_eq!(ipca.n_samples_seen(), before);
    }

    #[test]
    fn transform_shape() {
        let x = cloud(50, 6);
        let mut ipca = IncrementalPca::new(3);
        ipca.fit(&x, 25);
        let t = ipca.transform(&x);
        assert_eq!(t.shape(), (50, 3));
    }
}
