//! # dimred-baselines
//!
//! The comparator suite for the I-mrDMD evaluation: from-scratch
//! implementations of every dimensionality-reduction method the paper
//! benchmarks against in Figs. 8 and 9:
//!
//! - [`pca::Pca`] — batch PCA (`sklearn.decomposition.PCA`),
//! - [`ipca::IncrementalPca`] — Ross et al. streaming PCA
//!   (`sklearn.decomposition.IncrementalPCA`),
//! - [`tsne::Tsne`] — exact t-SNE (`sklearn.manifold.TSNE`),
//! - [`umap::Umap`] — simplified UMAP (umap-learn),
//! - [`aligned::AlignedUmap`] — sequentially aligned UMAP
//!   (Dadu et al. 2023), the one manifold method with a `partial_fit`.
//!
//! Matrices are `n_samples × n_features`; each method produces an
//! `n_samples × n_components` embedding. The algorithmic scalings match the
//! originals (IPCA minibatch `O(n·q²)`, exact t-SNE `O(n²)` per iteration,
//! UMAP `O(n²)` graph + `O(edges)` SGD), which is what Fig. 9's timing
//! comparison actually measures.

#![warn(missing_docs)]
pub mod aligned;
pub mod common;
pub mod ipca;
pub mod pca;
pub mod tsne;
pub mod umap;

pub use aligned::AlignedUmap;
pub use ipca::IncrementalPca;
pub use pca::Pca;
pub use tsne::{Tsne, TsneConfig};
pub use umap::{Umap, UmapConfig};
