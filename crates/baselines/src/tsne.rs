//! Exact t-SNE (van der Maaten & Hinton 2008) — the `sklearn.manifold.TSNE`
//! counterpart in the paper's comparison. O(n²) per iteration, which is
//! exactly why Fig. 9 shows it falling behind at scale.

use crate::common::pairwise_sq_dists;
use crate::pca::Pca;
use hpc_linalg::Mat;

/// t-SNE hyper-parameters (defaults mirror the paper's settings:
/// `perplexity = 30`, two components).
#[derive(Clone, Copy, Debug)]
pub struct TsneConfig {
    /// Output dimensionality.
    pub n_components: usize,
    /// Effective number of neighbours.
    pub perplexity: f64,
    /// Gradient step size; `0.0` selects the standard automatic rate
    /// `max(n/early_exaggeration, 50)`.
    pub learning_rate: f64,
    /// Total gradient-descent iterations.
    pub n_iter: usize,
    /// Early-exaggeration factor applied for the first quarter of the run.
    pub early_exaggeration: f64,
    /// RNG seed (used only if PCA init degenerates).
    pub seed: u64,
    /// Worker threads for the gradient (0 = all available cores). The
    /// parallel path is the Multicore-TSNE counterpart the paper lists but
    /// could not install; results are identical to the serial path.
    pub n_threads: usize,
}

impl Default for TsneConfig {
    fn default() -> Self {
        TsneConfig {
            n_components: 2,
            perplexity: 30.0,
            learning_rate: 0.0,
            n_iter: 400,
            early_exaggeration: 12.0,
            seed: 0,
            n_threads: 1,
        }
    }
}

/// Fitted t-SNE embedding.
#[derive(Clone, Debug)]
pub struct Tsne {
    /// Configuration used.
    pub config: TsneConfig,
    embedding: Mat,
}

impl Tsne {
    /// Runs exact t-SNE on `x` (`n_samples × n_features`).
    pub fn fit(x: &Mat, config: &TsneConfig) -> Tsne {
        let n = x.rows();
        assert!(n >= 4, "t-SNE needs at least a handful of samples");
        let k = config.n_components;
        let p = joint_probabilities(x, config.perplexity.min((n as f64 - 1.0) / 3.0));
        // PCA init, scaled to tiny spread (standard practice).
        let mut y = {
            let mut pca = Pca::new(k.min(x.cols()).max(1));
            pca.fit(x);
            let mut e = Mat::zeros(n, k);
            let scores = pca.embedding();
            let spread = scores.max_abs().max(1e-12);
            for i in 0..n {
                for j in 0..k.min(scores.cols()) {
                    e[(i, j)] = scores[(i, j)] / spread * 1e-4;
                }
            }
            // Break exact ties deterministically.
            for i in 0..n {
                for j in 0..k {
                    e[(i, j)] += 1e-6 * hash_unit(config.seed, (i * k + j) as u64);
                }
            }
            e
        };
        let lr = if config.learning_rate > 0.0 {
            config.learning_rate
        } else {
            (n as f64 / config.early_exaggeration).max(50.0)
        };
        let mut vel = Mat::zeros(n, k);
        let exag_end = config.n_iter / 4;
        let threads = if config.n_threads == 0 {
            std::thread::available_parallelism()
                .map(|t| t.get())
                .unwrap_or(1)
        } else {
            config.n_threads
        };
        for iter in 0..config.n_iter {
            let exag = if iter < exag_end {
                config.early_exaggeration
            } else {
                1.0
            };
            let momentum = if iter < exag_end { 0.5 } else { 0.8 };
            let grad = gradient(&p, &y, exag, threads);
            for i in 0..n {
                for j in 0..k {
                    let v = momentum * vel[(i, j)] - lr * grad[(i, j)];
                    vel[(i, j)] = v;
                    y[(i, j)] += v;
                }
            }
        }
        Tsne {
            config: *config,
            embedding: y,
        }
    }

    /// The embedded samples (`n × n_components`).
    pub fn embedding(&self) -> &Mat {
        &self.embedding
    }
}

/// Symmetrised joint probabilities with per-point perplexity calibration.
fn joint_probabilities(x: &Mat, perplexity: f64) -> Mat {
    let n = x.rows();
    let d = pairwise_sq_dists(x);
    let target_entropy = perplexity.max(2.0).ln();
    let mut p = Mat::zeros(n, n);
    for i in 0..n {
        // Binary search the precision β = 1/(2σ²) to hit the target entropy.
        let mut beta = 1.0f64;
        let (mut lo, mut hi) = (0.0f64, f64::INFINITY);
        let mut row = vec![0.0; n];
        for _ in 0..64 {
            let mut sum = 0.0;
            for j in 0..n {
                if j != i {
                    let v = (-beta * d[(i, j)]).exp();
                    row[j] = v;
                    sum += v;
                }
            }
            if sum <= 0.0 {
                break;
            }
            // H = ln Σ + β·Σ d·p / Σ.
            let mut dp = 0.0;
            for j in 0..n {
                if j != i {
                    dp += d[(i, j)] * row[j];
                }
            }
            let h = sum.ln() + beta * dp / sum;
            let diff = h - target_entropy;
            if diff.abs() < 1e-5 {
                break;
            }
            if diff > 0.0 {
                lo = beta;
                beta = if hi.is_finite() {
                    (beta + hi) / 2.0
                } else {
                    beta * 2.0
                };
            } else {
                hi = beta;
                beta = (beta + lo) / 2.0;
            }
        }
        let sum: f64 = row.iter().sum::<f64>().max(1e-300);
        for j in 0..n {
            if j != i {
                p[(i, j)] = row[j] / sum;
            }
        }
    }
    // Symmetrise and normalise over all pairs.
    let mut out = Mat::zeros(n, n);
    for i in 0..n {
        for j in 0..n {
            out[(i, j)] = ((p[(i, j)] + p[(j, i)]) / (2.0 * n as f64)).max(1e-12);
        }
    }
    for i in 0..n {
        out[(i, i)] = 0.0;
    }
    out
}

/// KL-divergence gradient with Student-t kernel, row-parallel when
/// `threads > 1` (rows of the gradient are independent given `qnum`).
fn gradient(p: &Mat, y: &Mat, exaggeration: f64, threads: usize) -> Mat {
    let n = y.rows();
    let k = y.cols();
    // qnum[i][j] = (1 + ‖yi−yj‖²)^−1.
    let dy = pairwise_sq_dists(y);
    let mut qsum = 0.0;
    let mut qnum = Mat::zeros(n, n);
    for i in 0..n {
        for j in 0..n {
            if i != j {
                let v = 1.0 / (1.0 + dy[(i, j)]);
                qnum[(i, j)] = v;
                qsum += v;
            }
        }
    }
    let qsum = qsum.max(1e-300);
    let mut grad = Mat::zeros(n, k);
    let row_block = |i0: usize, rows: &mut [f64]| {
        for (off, row) in rows.chunks_mut(k).enumerate() {
            let i = i0 + off;
            for j in 0..n {
                if i == j {
                    continue;
                }
                let pij = exaggeration * p[(i, j)];
                let qij = (qnum[(i, j)] / qsum).max(1e-12);
                let mult = 4.0 * (pij - qij) * qnum[(i, j)];
                for (c, g) in row.iter_mut().enumerate() {
                    *g += mult * (y[(i, c)] - y[(j, c)]);
                }
            }
        }
    };
    let threads = threads.max(1).min(n.max(1));
    if threads <= 1 || n < 64 {
        row_block(0, grad.as_mut_slice());
    } else {
        let chunk = n.div_ceil(threads);
        let blocks: Vec<(usize, &mut [f64])> = grad
            .as_mut_slice()
            .chunks_mut(chunk * k)
            .enumerate()
            .map(|(ci, s)| (ci * chunk, s))
            .collect();
        std::thread::scope(|scope| {
            for (i0, rows) in blocks {
                let row_block = &row_block;
                scope.spawn(move || row_block(i0, rows));
            }
        });
    }
    grad
}

fn hash_unit(seed: u64, a: u64) -> f64 {
    let mut h = seed
        .wrapping_mul(0x9e3779b97f4a7c15)
        .wrapping_add(a.wrapping_mul(0xbf58476d1ce4e5b9));
    h ^= h >> 30;
    h = h.wrapping_mul(0xbf58476d1ce4e5b9);
    h ^= h >> 27;
    (h >> 11) as f64 / (1u64 << 53) as f64 - 0.5
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two well-separated Gaussian-ish blobs in 5-D.
    fn two_blobs(n_per: usize) -> (Mat, usize) {
        let n = 2 * n_per;
        let m = Mat::from_fn(n, 5, |i, j| {
            let blob = if i < n_per { 0.0 } else { 20.0 };
            blob + ((i * 37 + j * 11) % 89) as f64 / 89.0
        });
        (m, n_per)
    }

    #[test]
    fn separates_two_blobs() {
        let (x, n_per) = two_blobs(20);
        let t = Tsne::fit(
            &x,
            &TsneConfig {
                n_iter: 300,
                perplexity: 10.0,
                ..Default::default()
            },
        );
        let e = t.embedding();
        // Centroid separation must exceed within-blob spread.
        let centroid = |r: std::ops::Range<usize>| {
            let n = r.len() as f64;
            let cx: f64 = r.clone().map(|i| e[(i, 0)]).sum::<f64>() / n;
            let cy: f64 = r.map(|i| e[(i, 1)]).sum::<f64>() / n;
            (cx, cy)
        };
        let (ax, ay) = centroid(0..n_per);
        let (bx, by) = centroid(n_per..2 * n_per);
        let sep = ((ax - bx).powi(2) + (ay - by).powi(2)).sqrt();
        let spread: f64 = (0..n_per)
            .map(|i| ((e[(i, 0)] - ax).powi(2) + (e[(i, 1)] - ay).powi(2)).sqrt())
            .sum::<f64>()
            / n_per as f64;
        assert!(sep > 2.0 * spread, "separation {sep} vs spread {spread}");
    }

    #[test]
    fn joint_probabilities_are_a_distribution() {
        let (x, _) = two_blobs(10);
        let p = joint_probabilities(&x, 5.0);
        let total: f64 = p.as_slice().iter().sum();
        assert!((total - 1.0).abs() < 1e-6, "total probability {total}");
        // Symmetric.
        for i in 0..p.rows() {
            for j in 0..p.cols() {
                assert!((p[(i, j)] - p[(j, i)]).abs() < 1e-15);
            }
        }
    }

    #[test]
    fn embedding_shape_and_finiteness() {
        let (x, _) = two_blobs(8);
        let t = Tsne::fit(
            &x,
            &TsneConfig {
                n_iter: 50,
                perplexity: 5.0,
                ..Default::default()
            },
        );
        assert_eq!(t.embedding().shape(), (16, 2));
        assert!(t.embedding().as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let (x, _) = two_blobs(8);
        let cfg = TsneConfig {
            n_iter: 60,
            perplexity: 5.0,
            ..Default::default()
        };
        let a = Tsne::fit(&x, &cfg);
        let b = Tsne::fit(&x, &cfg);
        assert!(a.embedding().fro_dist(b.embedding()) < 1e-12);
    }

    #[test]
    fn multicore_matches_serial_exactly() {
        let (x, _) = two_blobs(40); // 80 samples, above the parallel floor
        let serial = Tsne::fit(
            &x,
            &TsneConfig {
                n_iter: 40,
                perplexity: 10.0,
                n_threads: 1,
                ..Default::default()
            },
        );
        let parallel = Tsne::fit(
            &x,
            &TsneConfig {
                n_iter: 40,
                perplexity: 10.0,
                n_threads: 4,
                ..Default::default()
            },
        );
        assert!(
            serial.embedding().fro_dist(parallel.embedding()) < 1e-12,
            "parallel gradient must be bit-compatible"
        );
    }
}
