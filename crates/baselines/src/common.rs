//! Shared helpers for the dimensionality-reduction baselines.

use hpc_linalg::Mat;

/// Squared Euclidean distance matrix between the rows of `x` (`n × n`).
pub fn pairwise_sq_dists(x: &Mat) -> Mat {
    let n = x.rows();
    let sq: Vec<f64> = (0..n)
        .map(|i| x.row(i).iter().map(|&v| v * v).sum())
        .collect();
    // ‖a−b‖² = ‖a‖² + ‖b‖² − 2a·b; the Gram matrix does the heavy lifting.
    let gram = x.matmul_nt(x);
    let mut d = Mat::zeros(n, n);
    for i in 0..n {
        for j in 0..n {
            let v = (sq[i] + sq[j] - 2.0 * gram[(i, j)]).max(0.0);
            d[(i, j)] = v;
        }
    }
    d
}

/// Indices of the `k` nearest neighbours of each row (excluding itself),
/// from a squared-distance matrix.
pub fn knn_from_dists(d: &Mat, k: usize) -> Vec<Vec<usize>> {
    let n = d.rows();
    let k = k.min(n.saturating_sub(1));
    (0..n)
        .map(|i| {
            let mut idx: Vec<usize> = (0..n).filter(|&j| j != i).collect();
            idx.sort_by(|&a, &b| d[(i, a)].partial_cmp(&d[(i, b)]).unwrap());
            idx.truncate(k);
            idx
        })
        .collect()
}

/// Subtracts the column means of `x` in place and returns the means.
pub fn center_columns(x: &mut Mat) -> Vec<f64> {
    let n = x.rows().max(1);
    let d = x.cols();
    let mut means = vec![0.0; d];
    for i in 0..x.rows() {
        for (m, &v) in means.iter_mut().zip(x.row(i)) {
            *m += v;
        }
    }
    for m in &mut means {
        *m /= n as f64;
    }
    for i in 0..x.rows() {
        for (v, &m) in x.row_mut(i).iter_mut().zip(&means) {
            *v -= m;
        }
    }
    means
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pairwise_dists_match_manual() {
        let x = Mat::from_rows(&[vec![0.0, 0.0], vec![3.0, 4.0], vec![1.0, 0.0]]);
        let d = pairwise_sq_dists(&x);
        assert!((d[(0, 1)] - 25.0).abs() < 1e-12);
        assert!((d[(0, 2)] - 1.0).abs() < 1e-12);
        assert!((d[(1, 2)] - 20.0).abs() < 1e-12);
        for i in 0..3 {
            assert_eq!(d[(i, i)], 0.0);
        }
    }

    #[test]
    fn knn_orders_by_distance() {
        let x = Mat::from_rows(&[vec![0.0], vec![1.0], vec![10.0], vec![0.2]]);
        let d = pairwise_sq_dists(&x);
        let nn = knn_from_dists(&d, 2);
        assert_eq!(nn[0], vec![3, 1]);
        assert_eq!(nn[2], vec![1, 3]);
    }

    #[test]
    fn centering_zeroes_means() {
        let mut x = Mat::from_rows(&[vec![1.0, 10.0], vec![3.0, 20.0]]);
        let means = center_columns(&mut x);
        assert_eq!(means, vec![2.0, 15.0]);
        assert!((x.row(0)[0] + 1.0).abs() < 1e-12);
        let col_sum: f64 = (0..2).map(|i| x.row(i)[1]).sum();
        assert!(col_sum.abs() < 1e-12);
    }
}
