//! Aligned-UMAP (Dadu et al. 2023) — sequential embeddings of evolving data
//! kept mutually comparable by anchoring each fit to the previous one.
//!
//! In the paper's Fig. 9, Aligned-UMAP is the only manifold method with a
//! `partial_fit`: after an initial embedding, each new slice of data updates
//! the layout with a shorter SGD run initialised from (and spring-anchored
//! to) the previous positions.

use crate::umap::{pca_init, Umap, UmapConfig};
use hpc_linalg::Mat;

/// Streaming aligned UMAP over a fixed sample population with growing
/// feature sets (e.g. the same sensors observed over ever more time).
#[derive(Clone, Debug)]
pub struct AlignedUmap {
    /// Base UMAP configuration.
    pub config: UmapConfig,
    /// Spring strength pulling points toward their previous positions.
    pub alignment_weight: f64,
    /// Epoch fraction used for each incremental update (of `config.n_epochs`).
    pub update_epoch_fraction: f64,
    embedding: Option<Mat>,
    history: Vec<Mat>,
    n_fits: usize,
}

impl AlignedUmap {
    /// Creates an unfitted aligned UMAP.
    pub fn new(config: UmapConfig) -> AlignedUmap {
        AlignedUmap {
            config,
            alignment_weight: 1.0,
            update_epoch_fraction: 0.25,
            embedding: None,
            history: Vec::new(),
            n_fits: 0,
        }
    }

    /// Initial fit on `x` (`n_samples × n_features`): a full UMAP run.
    pub fn fit(&mut self, x: &Mat) {
        let u = Umap::fit(x, &self.config);
        self.embedding = Some(u.embedding().clone());
        self.history = vec![u.embedding().clone()];
        self.n_fits = 1;
    }

    /// Aligned update with the current feature matrix (same samples, new
    /// features appended): short SGD from the previous layout with anchor
    /// springs.
    ///
    /// # Panics
    /// Panics if called before [`fit`](Self::fit) or with a different number
    /// of samples.
    pub fn partial_fit(&mut self, x: &Mat) {
        let prev = self.embedding.as_ref().expect("partial_fit before fit");
        assert_eq!(
            x.rows(),
            prev.rows(),
            "aligned update requires the same samples"
        );
        let epochs = ((self.config.n_epochs as f64 * self.update_epoch_fraction) as usize).max(10);
        let anchor = prev.clone();
        let u = Umap::fit_from_init(
            x,
            anchor.clone(),
            &self.config,
            epochs,
            Some((&anchor, self.alignment_weight)),
        );
        self.embedding = Some(u.embedding().clone());
        self.history.push(u.embedding().clone());
        self.n_fits += 1;
    }

    /// The current embedding, if fitted.
    pub fn embedding(&self) -> Option<&Mat> {
        self.embedding.as_ref()
    }

    /// Number of fits (initial + incremental) so far.
    pub fn n_fits(&self) -> usize {
        self.n_fits
    }

    /// The aligned embedding sequence — one snapshot per fit, mutually
    /// comparable thanks to the anchoring (the longitudinal output
    /// Aligned-UMAP exists for).
    pub fn embedding_sequence(&self) -> &[Mat] {
        &self.history
    }

    /// A fresh PCA initialisation for the given data (exposed for tests and
    /// harnesses that want a non-aligned restart).
    pub fn cold_init(&self, x: &Mat) -> Mat {
        pca_init(x, self.config.n_components)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs(n_per: usize, d: usize, gap: f64) -> Mat {
        Mat::from_fn(2 * n_per, d, |i, j| {
            let blob = if i < n_per { 0.0 } else { gap };
            blob + ((i * 41 + j * 13) % 61) as f64 / 61.0
        })
    }

    #[test]
    fn partial_fit_preserves_alignment() {
        let x0 = blobs(15, 6, 12.0);
        let cfg = UmapConfig {
            n_neighbors: 6,
            n_epochs: 80,
            ..Default::default()
        };
        let mut au = AlignedUmap::new(cfg);
        au.fit(&x0);
        let before = au.embedding().unwrap().clone();
        // New features appended (same sample structure).
        let x1 = blobs(15, 9, 12.0);
        au.partial_fit(&x1);
        let after = au.embedding().unwrap();
        // Aligned update stays close to the previous layout.
        let drift = after.fro_dist(&before) / before.fro_norm().max(1e-9);
        assert!(drift < 1.0, "aligned drift {drift}");
        assert_eq!(au.n_fits(), 2);
        // The sequence records both snapshots, first one untouched.
        let seq = au.embedding_sequence();
        assert_eq!(seq.len(), 2);
        assert!(seq[0].fro_dist(&before) < 1e-12);
    }

    #[test]
    #[should_panic(expected = "partial_fit before fit")]
    fn partial_before_fit_panics() {
        let mut au = AlignedUmap::new(UmapConfig::default());
        au.partial_fit(&blobs(10, 4, 5.0));
    }

    #[test]
    fn sample_count_must_match() {
        let cfg = UmapConfig {
            n_neighbors: 5,
            n_epochs: 30,
            ..Default::default()
        };
        let mut au = AlignedUmap::new(cfg);
        au.fit(&blobs(10, 4, 5.0));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            au.partial_fit(&blobs(12, 4, 5.0));
        }));
        assert!(result.is_err());
    }

    #[test]
    fn separation_survives_updates() {
        let n_per = 12;
        let cfg = UmapConfig {
            n_neighbors: 6,
            n_epochs: 80,
            ..Default::default()
        };
        let mut au = AlignedUmap::new(cfg);
        au.fit(&blobs(n_per, 5, 15.0));
        au.partial_fit(&blobs(n_per, 7, 15.0));
        let e = au.embedding().unwrap();
        let centroid = |r: std::ops::Range<usize>| {
            let n = r.len() as f64;
            (
                r.clone().map(|i| e[(i, 0)]).sum::<f64>() / n,
                r.map(|i| e[(i, 1)]).sum::<f64>() / n,
            )
        };
        let (ax, ay) = centroid(0..n_per);
        let (bx, by) = centroid(n_per..2 * n_per);
        let sep = ((ax - bx).powi(2) + (ay - by).powi(2)).sqrt();
        assert!(sep > 0.5, "separation {sep}");
    }
}
