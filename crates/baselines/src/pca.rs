//! Principal component analysis (batch) — the `sklearn.decomposition.PCA`
//! counterpart in the paper's Figs. 8–9 comparison.

use crate::common::center_columns;
use hpc_linalg::{svd_truncated, Mat};

/// Batch PCA via truncated SVD of the centered data.
#[derive(Clone, Debug)]
pub struct Pca {
    /// Output dimensionality.
    pub n_components: usize,
    mean: Vec<f64>,
    /// `d × k` principal directions.
    components: Mat,
    /// Per-component singular values.
    singular_values: Vec<f64>,
    /// `n × k` projection of the training data.
    scores: Mat,
}

impl Pca {
    /// Creates an unfitted PCA.
    pub fn new(n_components: usize) -> Pca {
        assert!(n_components >= 1);
        Pca {
            n_components,
            mean: vec![],
            components: Mat::zeros(0, 0),
            singular_values: vec![],
            scores: Mat::zeros(0, 0),
        }
    }

    /// Fits on `x` (`n_samples × n_features`) and stores the scores.
    pub fn fit(&mut self, x: &Mat) {
        let mut c = x.clone();
        self.mean = center_columns(&mut c);
        let k = self.n_components.min(x.rows().min(x.cols()));
        let f = svd_truncated(&c, k);
        self.singular_values = f.s.clone();
        self.components = f.v.clone(); // d × k
                                       // Scores = U·Σ = centered · V.
        self.scores = c.matmul(&self.components);
    }

    /// Embedding of the training samples (`n × k`).
    pub fn embedding(&self) -> &Mat {
        &self.scores
    }

    /// Projects new samples into the fitted space.
    pub fn transform(&self, x: &Mat) -> Mat {
        assert_eq!(x.cols(), self.mean.len(), "feature count mismatch");
        let mut c = x.clone();
        for i in 0..c.rows() {
            for (v, &m) in c.row_mut(i).iter_mut().zip(&self.mean) {
                *v -= m;
            }
        }
        c.matmul(&self.components)
    }

    /// Explained variance per retained component (σ²/(n−1)).
    pub fn explained_variance(&self, n_samples: usize) -> Vec<f64> {
        let denom = (n_samples.max(2) - 1) as f64;
        self.singular_values
            .iter()
            .map(|&s| s * s / denom)
            .collect()
    }

    /// The fitted principal directions (`d × k`).
    pub fn components(&self) -> &Mat {
        &self.components
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Anisotropic Gaussian-ish cloud along a known direction.
    fn line_cloud(n: usize) -> Mat {
        Mat::from_fn(n, 3, |i, j| {
            let t = i as f64 / n as f64 * 10.0 - 5.0;
            let dir = [2.0, 1.0, -0.5][j];
            let wiggle = (((i * 2654435761 + j * 97) % 997) as f64 / 997.0 - 0.5) * 0.1;
            t * dir + wiggle
        })
    }

    #[test]
    fn first_component_aligns_with_dominant_direction() {
        let x = line_cloud(200);
        let mut pca = Pca::new(2);
        pca.fit(&x);
        let c0: Vec<f64> = pca.components().col(0);
        // Should be parallel to (2, 1, −0.5)/‖·‖.
        let d = [2.0, 1.0, -0.5];
        let dn = (d.iter().map(|v| v * v).sum::<f64>()).sqrt();
        let cos: f64 = c0.iter().zip(&d).map(|(&a, &b)| a * b / dn).sum();
        assert!(cos.abs() > 0.999, "cosine {cos}");
    }

    #[test]
    fn scores_match_transform_of_training_data() {
        let x = line_cloud(60);
        let mut pca = Pca::new(2);
        pca.fit(&x);
        let t = pca.transform(&x);
        assert!(t.fro_dist(pca.embedding()) < 1e-9);
    }

    #[test]
    fn variance_concentrated_in_first_component() {
        let x = line_cloud(120);
        let mut pca = Pca::new(2);
        pca.fit(&x);
        let ev = pca.explained_variance(120);
        assert!(ev[0] > 100.0 * ev[1], "ev {ev:?}");
    }

    #[test]
    fn embedding_is_centered() {
        let x = line_cloud(80);
        let mut pca = Pca::new(2);
        pca.fit(&x);
        let e = pca.embedding();
        for j in 0..2 {
            let mean: f64 = (0..e.rows()).map(|i| e[(i, j)]).sum::<f64>() / e.rows() as f64;
            assert!(mean.abs() < 1e-9, "component {j} mean {mean}");
        }
    }
}
