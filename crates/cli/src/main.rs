//! Thin argv shim over the library half (see `lib.rs` for the command set).

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match imrdmd_cli::parse_args(&args).and_then(|cmd| imrdmd_cli::run(&cmd)) {
        Ok(report) => {
            print!("{report}");
            if !report.ends_with('\n') {
                println!();
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
