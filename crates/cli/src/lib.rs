//! # imrdmd-cli
//!
//! Command-line front end for the I-mrDMD suite. The library half holds the
//! testable command implementations; `main.rs` is a thin argv shim.
//!
//! ```text
//! imrdmd-cli synth   --nodes 64 --steps 1200 --seed 7 --out logs.csv
//! imrdmd-cli fit     --input logs.csv --dt 20 --levels 6 --model model.json
//! imrdmd-cli update  --model model.json --input new.csv
//! imrdmd-cli analyze --model model.json --input logs.csv
//! imrdmd-cli render  --model model.json --input logs.csv --layout "xc40 …" --out rack.svg
//! imrdmd-cli info    --model model.json
//! imrdmd-cli stream  --input logs.csv --dt 20 --model model.json \
//!                    --gap-policy hold --checkpoint-dir ckpts --resume --metrics-every 5
//! imrdmd-cli metrics --input logs.csv --dt 20 --format prom
//! ```
//!
//! Snapshot CSVs use the `hpc-telemetry` format (header `series,t0,t1,…`);
//! models are the serde-JSON form of [`imrdmd::IMrDmd`].

#![warn(missing_docs)]
pub mod args;
pub mod commands;

pub use args::{parse_args, Command};
pub use commands::run;

/// CLI error: message plus a nonzero exit intent.
#[derive(Debug)]
pub struct CliError(pub String);

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for CliError {}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError(format!("io error: {e}"))
    }
}

impl From<hpc_telemetry::IoError> for CliError {
    fn from(e: hpc_telemetry::IoError) -> Self {
        CliError(e.to_string())
    }
}

impl From<serde_json::Error> for CliError {
    fn from(e: serde_json::Error) -> Self {
        CliError(format!("model (de)serialisation: {e}"))
    }
}

impl From<imrdmd::CoreError> for CliError {
    fn from(e: imrdmd::CoreError) -> Self {
        CliError(e.to_string())
    }
}

impl From<imrdmd::CheckpointError> for CliError {
    fn from(e: imrdmd::CheckpointError) -> Self {
        CliError(format!("checkpoint: {e}"))
    }
}
