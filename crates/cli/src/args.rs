//! Argument parsing — hand-rolled `--flag value` pairs, no dependencies.

use crate::CliError;
use std::collections::BTreeMap;
use std::path::PathBuf;

/// A parsed CLI invocation.
#[derive(Clone, Debug, PartialEq)]
pub enum Command {
    /// Generate synthetic telemetry CSV.
    Synth {
        /// Nodes to simulate (one temperature channel each).
        nodes: usize,
        /// Snapshots to generate.
        steps: usize,
        /// Generator seed.
        seed: u64,
        /// Output CSV path.
        out: PathBuf,
    },
    /// Fit a fresh model from a snapshot CSV.
    Fit {
        /// Input snapshot CSV.
        input: PathBuf,
        /// Snapshot spacing in seconds.
        dt: f64,
        /// Tree depth.
        levels: usize,
        /// Slow-mode cycles per window.
        max_cycles: usize,
        /// Worker threads (0 = auto, 1 = serial).
        threads: usize,
        /// Root fit strategy (`exact` or `sketched`).
        fit_strategy: String,
        /// Seed for the sketched strategy's randomized probe (fixed
        /// default when omitted).
        sketch_seed: Option<u64>,
        /// Output model JSON path.
        model: PathBuf,
    },
    /// Stream a new snapshot CSV into an existing model.
    Update {
        /// Model JSON to update.
        model: PathBuf,
        /// New snapshots CSV.
        input: PathBuf,
        /// Where to write the updated model (defaults to `model`).
        model_out: Option<PathBuf>,
        /// Override the model's worker-thread knob (0 = auto, 1 = serial).
        threads: Option<usize>,
    },
    /// Spectrum + z-score analysis of a fitted model.
    Analyze {
        /// Model JSON.
        model: PathBuf,
        /// The telemetry CSV the model was fitted on (for baseline bands).
        input: PathBuf,
        /// Baseline band lower bound (raw units); quantile band if omitted.
        band_lo: Option<f64>,
        /// Baseline band upper bound.
        band_hi: Option<f64>,
    },
    /// Render a rack view SVG from a model + layout string.
    Render {
        /// Model JSON.
        model: PathBuf,
        /// The telemetry CSV (for baselines).
        input: PathBuf,
        /// Layout grammar string (Sec. III-B).
        layout: String,
        /// Output SVG path.
        out: PathBuf,
    },
    /// Print a model's tree summary and compression report.
    Info {
        /// Model JSON.
        model: PathBuf,
    },
    /// Print a model's numerical health: per-level node counts, coverage,
    /// solver statistics, and the last recorded solver error.
    Health {
        /// Model JSON.
        model: PathBuf,
    },
    /// Stream a snapshot CSV through the guarded ingest path in chunks,
    /// with periodic checkpointing and crash-resume.
    Stream {
        /// Input snapshot CSV (may contain NaN gaps as empty fields).
        input: PathBuf,
        /// Snapshot spacing in seconds.
        dt: f64,
        /// Snapshots per ingest batch.
        chunk: usize,
        /// Tree depth.
        levels: usize,
        /// Worker threads (0 = auto, 1 = serial).
        threads: usize,
        /// Gap repair policy (`reject`, `hold`, `interpolate`, `mask`).
        gap_policy: String,
        /// Root fit strategy (`exact` or `sketched`).
        fit_strategy: String,
        /// Seed for the sketched strategy's randomized probe.
        sketch_seed: Option<u64>,
        /// Persistent-store root; checkpoints go to `<store-dir>/checkpoints`.
        store_dir: Option<PathBuf>,
        /// Directory for periodic checkpoints (deprecated alias for
        /// `--store-dir`; still accepted, used verbatim).
        checkpoint_dir: Option<PathBuf>,
        /// Checkpoint every N chunks (default 1).
        checkpoint_every: usize,
        /// Resume from the newest checkpoint in the checkpoint directory
        /// instead of fitting from scratch.
        resume: bool,
        /// Emit a JSON-line metrics snapshot every N chunks (0 = off).
        metrics_every: usize,
        /// Output model JSON path.
        model: PathBuf,
    },
    /// Run the multi-tenant serving daemon (see `imrdmd-serve`).
    Serve {
        /// Listen address, e.g. `127.0.0.1:8080` or `0.0.0.0:9100`
        /// (`:0` binds an ephemeral port).
        addr: String,
        /// Snapshot spacing in seconds.
        dt: f64,
        /// Tree depth.
        levels: usize,
        /// Worker threads shared by all shards (0 = auto, 1 = serial).
        threads: usize,
        /// Gap repair policy (`reject`, `hold`, `interpolate`, `mask`).
        gap_policy: String,
        /// Root fit strategy (`exact` or `sketched`) for every tenant shard.
        fit_strategy: String,
        /// Seed for the sketched strategy's randomized probe.
        sketch_seed: Option<u64>,
        /// Persistent-store root; per-shard checkpoints and WALs go to
        /// `<store-dir>/checkpoints`.
        store_dir: Option<PathBuf>,
        /// Shared checkpoint directory (deprecated alias for
        /// `--store-dir`; still accepted, used verbatim); enables
        /// crash recovery.
        checkpoint_dir: Option<PathBuf>,
        /// Checkpoint every N batches per shard (default 1).
        checkpoint_every: usize,
        /// Keep the newest K checkpoints per shard (default 3, 0 = all).
        keep_checkpoints: usize,
        /// WAL fsync cadence: `none`, `interval`, or `batch` (default
        /// `interval`).
        durability: String,
        /// Cap on ingest body size, in MiB (default 32).
        max_body_mb: usize,
        /// Cap on resident tenants (default 4096).
        max_tenants: usize,
        /// Fleet-wide in-flight ingest budget (default 256).
        max_inflight: usize,
    },
    /// Stream a snapshot CSV through a fit and print the final metrics
    /// snapshot (JSON or Prometheus text exposition).
    Metrics {
        /// Input snapshot CSV.
        input: PathBuf,
        /// Snapshot spacing in seconds.
        dt: f64,
        /// Tree depth.
        levels: usize,
        /// Snapshots per ingest batch.
        chunk: usize,
        /// Root fit strategy (`exact` or `sketched`).
        fit_strategy: String,
        /// Seed for the sketched strategy's randomized probe.
        sketch_seed: Option<u64>,
        /// Output format: `json` or `prom`.
        format: String,
    },
    /// Write a fitted model as a compressed, seekable mode archive.
    Archive {
        /// Model JSON to archive.
        model: PathBuf,
        /// Quantization tier: `f64` (bitwise), `f32`, or `q16`.
        tier: String,
        /// Output archive path (overrides `--store-dir`).
        out: Option<PathBuf>,
        /// Persistent-store root; the archive goes to
        /// `<store-dir>/archives/<model-stem>.<tier>.arch`.
        store_dir: Option<PathBuf>,
    },
    /// Reconstruct a time range from an archive alone.
    Replay {
        /// Archive file to replay (overrides `--store-dir`).
        archive: Option<PathBuf>,
        /// Persistent-store root; replays the newest archive under
        /// `<store-dir>/archives`.
        store_dir: Option<PathBuf>,
        /// First snapshot of the range (default 0).
        from: Option<usize>,
        /// One past the last snapshot (default: end of timeline).
        to: Option<usize>,
        /// Output CSV path (stdout summary only when omitted).
        out: Option<PathBuf>,
    },
}

/// Usage text shown on parse errors.
pub const USAGE: &str = "usage: imrdmd-cli <synth|fit|update|analyze|render|info|health|stream|serve|metrics|archive|replay> [--flag value]...
  synth   --nodes N --steps T [--seed S] --out FILE.csv
  fit     --input FILE.csv --dt SECONDS [--levels L] [--max-cycles C] [--threads N]
          [--fit-strategy exact|sketched] [--sketch-seed S] --model FILE.json
  update  --model FILE.json --input FILE.csv [--model-out FILE.json] [--threads N]
  analyze --model FILE.json --input FILE.csv [--band-lo X --band-hi Y]
  render  --model FILE.json --input FILE.csv --layout \"SPEC\" --out FILE.svg
  info    --model FILE.json
  health  --model FILE.json
  stream  --input FILE.csv --dt SECONDS --model FILE.json [--chunk N] [--levels L] [--threads N]
          [--gap-policy reject|hold|interpolate|mask]
          [--fit-strategy exact|sketched] [--sketch-seed S]
          [--store-dir DIR | --checkpoint-dir DIR (deprecated)]
          [--checkpoint-every K] [--resume] [--metrics-every N]
  serve   --addr HOST:PORT --dt SECONDS [--levels L] [--threads N]
          [--gap-policy reject|hold|interpolate|mask]
          [--fit-strategy exact|sketched] [--sketch-seed S]
          [--store-dir DIR | --checkpoint-dir DIR (deprecated)]
          [--checkpoint-every K] [--keep-checkpoints K]
          [--durability none|interval|batch] [--max-body-mb M] [--max-tenants N]
          [--max-inflight N]
  metrics --input FILE.csv --dt SECONDS [--levels L] [--chunk N]
          [--fit-strategy exact|sketched] [--sketch-seed S] [--format json|prom]
  archive --model FILE.json [--tier f64|f32|q16] [--out FILE.arch] [--store-dir DIR]
  replay  --archive FILE.arch | --store-dir DIR
          [--from T0] [--to T1] [--out FILE.csv]";

/// Flags that take no value: their presence means `true`.
const BOOL_FLAGS: &[&str] = &["resume"];

/// Parses an argv slice (without the program name).
pub fn parse_args(args: &[String]) -> Result<Command, CliError> {
    let Some(cmd) = args.first() else {
        return Err(CliError(USAGE.into()));
    };
    let mut flags: BTreeMap<String, String> = BTreeMap::new();
    let mut it = args[1..].iter();
    while let Some(flag) = it.next() {
        let Some(name) = flag.strip_prefix("--") else {
            return Err(CliError(format!("expected a --flag, got `{flag}`")));
        };
        if BOOL_FLAGS.contains(&name) {
            flags.insert(name.to_string(), "true".to_string());
            continue;
        }
        let Some(value) = it.next() else {
            return Err(CliError(format!("flag --{name} needs a value")));
        };
        flags.insert(name.to_string(), value.clone());
    }
    let get = |name: &str| -> Result<String, CliError> {
        flags
            .get(name)
            .cloned()
            .ok_or_else(|| CliError(format!("missing required --{name}\n{USAGE}")))
    };
    let num = |name: &str| -> Result<f64, CliError> {
        get(name)?
            .parse()
            .map_err(|_| CliError(format!("--{name} must be a number")))
    };
    let int = |name: &str| -> Result<usize, CliError> {
        get(name)?
            .parse()
            .map_err(|_| CliError(format!("--{name} must be an integer")))
    };
    let opt_num = |name: &str| -> Result<Option<f64>, CliError> {
        flags
            .get(name)
            .map(|v| {
                v.parse()
                    .map_err(|_| CliError(format!("--{name} must be a number")))
            })
            .transpose()
    };
    let opt_int = |name: &str| -> Result<Option<usize>, CliError> {
        flags
            .get(name)
            .map(|v| {
                v.parse()
                    .map_err(|_| CliError(format!("--{name} must be an integer")))
            })
            .transpose()
    };
    let strategy = || {
        flags
            .get("fit-strategy")
            .cloned()
            .unwrap_or_else(|| "exact".to_string())
    };
    let sketch_seed = || -> Result<Option<u64>, CliError> {
        flags
            .get("sketch-seed")
            .map(|v| v.parse())
            .transpose()
            .map_err(|_| CliError("--sketch-seed must be an integer".into()))
    };
    match cmd.as_str() {
        "synth" => Ok(Command::Synth {
            nodes: int("nodes")?,
            steps: int("steps")?,
            seed: flags
                .get("seed")
                .map(|v| v.parse())
                .transpose()
                .map_err(|_| CliError("--seed must be an integer".into()))?
                .unwrap_or(42),
            out: get("out")?.into(),
        }),
        "fit" => Ok(Command::Fit {
            input: get("input")?.into(),
            dt: num("dt")?,
            levels: flags
                .get("levels")
                .map(|v| v.parse())
                .transpose()
                .map_err(|_| CliError("--levels must be an integer".into()))?
                .unwrap_or(6),
            max_cycles: flags
                .get("max-cycles")
                .map(|v| v.parse())
                .transpose()
                .map_err(|_| CliError("--max-cycles must be an integer".into()))?
                .unwrap_or(2),
            threads: flags
                .get("threads")
                .map(|v| v.parse())
                .transpose()
                .map_err(|_| CliError("--threads must be an integer".into()))?
                .unwrap_or(0),
            fit_strategy: strategy(),
            sketch_seed: sketch_seed()?,
            model: get("model")?.into(),
        }),
        "update" => Ok(Command::Update {
            model: get("model")?.into(),
            input: get("input")?.into(),
            model_out: flags.get("model-out").map(PathBuf::from),
            threads: flags
                .get("threads")
                .map(|v| v.parse())
                .transpose()
                .map_err(|_| CliError("--threads must be an integer".into()))?,
        }),
        "analyze" => Ok(Command::Analyze {
            model: get("model")?.into(),
            input: get("input")?.into(),
            band_lo: opt_num("band-lo")?,
            band_hi: opt_num("band-hi")?,
        }),
        "render" => Ok(Command::Render {
            model: get("model")?.into(),
            input: get("input")?.into(),
            layout: get("layout")?,
            out: get("out")?.into(),
        }),
        "info" => Ok(Command::Info {
            model: get("model")?.into(),
        }),
        "health" => Ok(Command::Health {
            model: get("model")?.into(),
        }),
        "stream" => Ok(Command::Stream {
            input: get("input")?.into(),
            dt: num("dt")?,
            chunk: flags
                .get("chunk")
                .map(|v| v.parse())
                .transpose()
                .map_err(|_| CliError("--chunk must be an integer".into()))?
                .unwrap_or(64),
            levels: flags
                .get("levels")
                .map(|v| v.parse())
                .transpose()
                .map_err(|_| CliError("--levels must be an integer".into()))?
                .unwrap_or(6),
            threads: flags
                .get("threads")
                .map(|v| v.parse())
                .transpose()
                .map_err(|_| CliError("--threads must be an integer".into()))?
                .unwrap_or(0),
            gap_policy: flags
                .get("gap-policy")
                .cloned()
                .unwrap_or_else(|| "reject".to_string()),
            fit_strategy: strategy(),
            sketch_seed: sketch_seed()?,
            store_dir: flags.get("store-dir").map(PathBuf::from),
            checkpoint_dir: flags.get("checkpoint-dir").map(PathBuf::from),
            checkpoint_every: flags
                .get("checkpoint-every")
                .map(|v| v.parse())
                .transpose()
                .map_err(|_| CliError("--checkpoint-every must be an integer".into()))?
                .unwrap_or(1),
            resume: flags.contains_key("resume"),
            metrics_every: flags
                .get("metrics-every")
                .map(|v| v.parse())
                .transpose()
                .map_err(|_| CliError("--metrics-every must be an integer".into()))?
                .unwrap_or(0),
            model: get("model")?.into(),
        }),
        "serve" => Ok(Command::Serve {
            addr: get("addr")?,
            dt: num("dt")?,
            levels: flags
                .get("levels")
                .map(|v| v.parse())
                .transpose()
                .map_err(|_| CliError("--levels must be an integer".into()))?
                .unwrap_or(6),
            threads: flags
                .get("threads")
                .map(|v| v.parse())
                .transpose()
                .map_err(|_| CliError("--threads must be an integer".into()))?
                .unwrap_or(0),
            gap_policy: flags
                .get("gap-policy")
                .cloned()
                .unwrap_or_else(|| "interpolate".to_string()),
            fit_strategy: strategy(),
            sketch_seed: sketch_seed()?,
            store_dir: flags.get("store-dir").map(PathBuf::from),
            checkpoint_dir: flags.get("checkpoint-dir").map(PathBuf::from),
            checkpoint_every: flags
                .get("checkpoint-every")
                .map(|v| v.parse())
                .transpose()
                .map_err(|_| CliError("--checkpoint-every must be an integer".into()))?
                .unwrap_or(1),
            keep_checkpoints: flags
                .get("keep-checkpoints")
                .map(|v| v.parse())
                .transpose()
                .map_err(|_| CliError("--keep-checkpoints must be an integer".into()))?
                .unwrap_or(3),
            durability: flags
                .get("durability")
                .cloned()
                .unwrap_or_else(|| "interval".to_string()),
            max_body_mb: flags
                .get("max-body-mb")
                .map(|v| v.parse())
                .transpose()
                .map_err(|_| CliError("--max-body-mb must be an integer".into()))?
                .unwrap_or(32),
            max_tenants: flags
                .get("max-tenants")
                .map(|v| v.parse())
                .transpose()
                .map_err(|_| CliError("--max-tenants must be an integer".into()))?
                .unwrap_or(4096),
            max_inflight: flags
                .get("max-inflight")
                .map(|v| v.parse())
                .transpose()
                .map_err(|_| CliError("--max-inflight must be an integer".into()))?
                .unwrap_or(256),
        }),
        "metrics" => Ok(Command::Metrics {
            input: get("input")?.into(),
            dt: num("dt")?,
            levels: flags
                .get("levels")
                .map(|v| v.parse())
                .transpose()
                .map_err(|_| CliError("--levels must be an integer".into()))?
                .unwrap_or(6),
            chunk: flags
                .get("chunk")
                .map(|v| v.parse())
                .transpose()
                .map_err(|_| CliError("--chunk must be an integer".into()))?
                .unwrap_or(64),
            fit_strategy: strategy(),
            sketch_seed: sketch_seed()?,
            format: flags
                .get("format")
                .cloned()
                .unwrap_or_else(|| "json".to_string()),
        }),
        "archive" => Ok(Command::Archive {
            model: get("model")?.into(),
            tier: flags
                .get("tier")
                .cloned()
                .unwrap_or_else(|| "q16".to_string()),
            out: flags.get("out").map(PathBuf::from),
            store_dir: flags.get("store-dir").map(PathBuf::from),
        }),
        "replay" => Ok(Command::Replay {
            archive: flags.get("archive").map(PathBuf::from),
            store_dir: flags.get("store-dir").map(PathBuf::from),
            from: opt_int("from")?,
            to: opt_int("to")?,
            out: flags.get("out").map(PathBuf::from),
        }),
        other => Err(CliError(format!("unknown subcommand `{other}`\n{USAGE}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parses_fit() {
        let c = parse_args(&argv(
            "fit --input a.csv --dt 20 --levels 5 --threads 4 --model m.json",
        ))
        .unwrap();
        assert_eq!(
            c,
            Command::Fit {
                input: "a.csv".into(),
                dt: 20.0,
                levels: 5,
                max_cycles: 2,
                threads: 4,
                fit_strategy: "exact".into(),
                sketch_seed: None,
                model: "m.json".into()
            }
        );
    }

    #[test]
    fn defaults_apply() {
        let c = parse_args(&argv("synth --nodes 8 --steps 100 --out x.csv")).unwrap();
        assert_eq!(
            c,
            Command::Synth {
                nodes: 8,
                steps: 100,
                seed: 42,
                out: "x.csv".into()
            }
        );
        let c = parse_args(&argv("fit --input a.csv --dt 1 --model m.json")).unwrap();
        match c {
            Command::Fit {
                levels,
                max_cycles,
                threads,
                ..
            } => {
                assert_eq!(levels, 6);
                assert_eq!(max_cycles, 2);
                assert_eq!(threads, 0, "auto by default");
            }
            _ => panic!("wrong variant"),
        }
    }

    #[test]
    fn parses_health() {
        let c = parse_args(&argv("health --model m.json")).unwrap();
        assert_eq!(
            c,
            Command::Health {
                model: "m.json".into()
            }
        );
        assert!(parse_args(&argv("health")).is_err());
    }

    #[test]
    fn missing_required_flag_is_an_error() {
        let e = parse_args(&argv("fit --input a.csv --dt 20")).unwrap_err();
        assert!(e.0.contains("--model"));
    }

    #[test]
    fn unknown_subcommand_is_an_error() {
        assert!(parse_args(&argv("frobnicate --x 1")).is_err());
        assert!(parse_args(&[]).is_err());
    }

    #[test]
    fn bad_numbers_are_errors() {
        assert!(parse_args(&argv("fit --input a.csv --dt abc --model m.json")).is_err());
        assert!(parse_args(&argv("synth --nodes x --steps 10 --out o.csv")).is_err());
    }

    #[test]
    fn update_optional_output() {
        let c = parse_args(&argv("update --model m.json --input b.csv")).unwrap();
        assert_eq!(
            c,
            Command::Update {
                model: "m.json".into(),
                input: "b.csv".into(),
                model_out: None,
                threads: None
            }
        );
        let c = parse_args(&argv(
            "update --model m.json --input b.csv --model-out n.json",
        ))
        .unwrap();
        match c {
            Command::Update { model_out, .. } => assert_eq!(model_out, Some("n.json".into())),
            _ => panic!("wrong variant"),
        }
    }

    #[test]
    fn parses_stream_with_defaults() {
        let c = parse_args(&argv("stream --input a.csv --dt 20 --model m.json")).unwrap();
        assert_eq!(
            c,
            Command::Stream {
                input: "a.csv".into(),
                dt: 20.0,
                chunk: 64,
                levels: 6,
                threads: 0,
                gap_policy: "reject".into(),
                fit_strategy: "exact".into(),
                sketch_seed: None,
                store_dir: None,
                checkpoint_dir: None,
                checkpoint_every: 1,
                resume: false,
                metrics_every: 0,
                model: "m.json".into(),
            }
        );
    }

    #[test]
    fn parses_metrics_flags() {
        let c = parse_args(&argv("metrics --input a.csv --dt 20")).unwrap();
        assert_eq!(
            c,
            Command::Metrics {
                input: "a.csv".into(),
                dt: 20.0,
                levels: 6,
                chunk: 64,
                fit_strategy: "exact".into(),
                sketch_seed: None,
                format: "json".into(),
            }
        );
        let c = parse_args(&argv(
            "metrics --input a.csv --dt 20 --levels 4 --chunk 32 --format prom",
        ))
        .unwrap();
        match c {
            Command::Metrics {
                levels,
                chunk,
                format,
                ..
            } => {
                assert_eq!((levels, chunk), (4, 32));
                assert_eq!(format, "prom");
            }
            _ => panic!("wrong variant"),
        }
        assert!(parse_args(&argv("metrics --input a.csv")).is_err());
    }

    #[test]
    fn fit_strategy_flags_parse() {
        let c = parse_args(&argv(
            "fit --input a.csv --dt 1 --fit-strategy sketched --sketch-seed 7 --model m.json",
        ))
        .unwrap();
        match c {
            Command::Fit {
                fit_strategy,
                sketch_seed,
                ..
            } => {
                assert_eq!(fit_strategy, "sketched");
                assert_eq!(sketch_seed, Some(7));
            }
            _ => panic!("wrong variant"),
        }
        assert!(
            parse_args(&argv(
                "fit --input a.csv --dt 1 --sketch-seed x --model m.json"
            ))
            .is_err(),
            "--sketch-seed must be an integer"
        );
    }

    #[test]
    fn stream_metrics_every_parses() {
        let c = parse_args(&argv(
            "stream --input a.csv --dt 20 --model m.json --metrics-every 5",
        ))
        .unwrap();
        match c {
            Command::Stream { metrics_every, .. } => assert_eq!(metrics_every, 5),
            _ => panic!("wrong variant"),
        }
        assert!(parse_args(&argv(
            "stream --input a.csv --dt 20 --model m.json --metrics-every x",
        ))
        .is_err());
    }

    #[test]
    fn stream_resume_is_a_bare_flag() {
        let c = parse_args(&argv(
            "stream --input a.csv --dt 20 --model m.json \
             --gap-policy hold --checkpoint-dir ckpts --checkpoint-every 4 --resume",
        ))
        .unwrap();
        match c {
            Command::Stream {
                gap_policy,
                checkpoint_dir,
                checkpoint_every,
                resume,
                ..
            } => {
                assert_eq!(gap_policy, "hold");
                assert_eq!(checkpoint_dir, Some("ckpts".into()));
                assert_eq!(checkpoint_every, 4);
                assert!(resume);
            }
            _ => panic!("wrong variant"),
        }
        // --resume consumes no value: the next token is parsed as a flag.
        let c = parse_args(&argv(
            "stream --input a.csv --dt 20 --resume --model m.json",
        ))
        .unwrap();
        match c {
            Command::Stream { resume, model, .. } => {
                assert!(resume);
                assert_eq!(model, PathBuf::from("m.json"));
            }
            _ => panic!("wrong variant"),
        }
    }

    #[test]
    fn parses_serve_with_defaults() {
        let c = parse_args(&argv("serve --addr 127.0.0.1:0 --dt 20")).unwrap();
        assert_eq!(
            c,
            Command::Serve {
                addr: "127.0.0.1:0".into(),
                dt: 20.0,
                levels: 6,
                threads: 0,
                gap_policy: "interpolate".into(),
                fit_strategy: "exact".into(),
                sketch_seed: None,
                store_dir: None,
                checkpoint_dir: None,
                checkpoint_every: 1,
                keep_checkpoints: 3,
                durability: "interval".into(),
                max_body_mb: 32,
                max_tenants: 4096,
                max_inflight: 256,
            }
        );
        let c = parse_args(&argv(
            "serve --addr 0.0.0.0:9100 --dt 1 --levels 4 --threads 2 \
             --gap-policy hold --checkpoint-dir ck --checkpoint-every 8 \
             --keep-checkpoints 5 --durability batch \
             --max-body-mb 4 --max-tenants 64 --max-inflight 16",
        ))
        .unwrap();
        match c {
            Command::Serve {
                levels,
                threads,
                gap_policy,
                checkpoint_dir,
                checkpoint_every,
                keep_checkpoints,
                durability,
                max_body_mb,
                max_tenants,
                max_inflight,
                ..
            } => {
                assert_eq!((levels, threads), (4, 2));
                assert_eq!(gap_policy, "hold");
                assert_eq!(checkpoint_dir, Some("ck".into()));
                assert_eq!((checkpoint_every, max_body_mb, max_tenants), (8, 4, 64));
                assert_eq!((keep_checkpoints, max_inflight), (5, 16));
                assert_eq!(durability, "batch");
            }
            _ => panic!("wrong variant"),
        }
        assert!(
            parse_args(&argv("serve --dt 20")).is_err(),
            "--addr required"
        );
        assert!(
            parse_args(&argv("serve --addr 1.2.3.4:1")).is_err(),
            "--dt required"
        );
    }

    #[test]
    fn parses_archive_and_replay() {
        let c = parse_args(&argv("archive --model m.json")).unwrap();
        assert_eq!(
            c,
            Command::Archive {
                model: "m.json".into(),
                tier: "q16".into(),
                out: None,
                store_dir: None,
            }
        );
        let c = parse_args(&argv(
            "archive --model m.json --tier f64 --out m.arch --store-dir store",
        ))
        .unwrap();
        match c {
            Command::Archive {
                tier,
                out,
                store_dir,
                ..
            } => {
                assert_eq!(tier, "f64");
                assert_eq!(out, Some("m.arch".into()));
                assert_eq!(store_dir, Some("store".into()));
            }
            _ => panic!("wrong variant"),
        }
        let c = parse_args(&argv(
            "replay --archive m.arch --from 100 --to 300 --out r.csv",
        ))
        .unwrap();
        assert_eq!(
            c,
            Command::Replay {
                archive: Some("m.arch".into()),
                store_dir: None,
                from: Some(100),
                to: Some(300),
                out: Some("r.csv".into()),
            }
        );
        assert!(
            parse_args(&argv("replay --archive m.arch --from x")).is_err(),
            "--from must be an integer"
        );
    }

    #[test]
    fn store_dir_parses_on_stream_and_serve() {
        let c = parse_args(&argv(
            "stream --input a.csv --dt 20 --model m.json --store-dir store",
        ))
        .unwrap();
        match c {
            Command::Stream {
                store_dir,
                checkpoint_dir,
                ..
            } => {
                assert_eq!(store_dir, Some("store".into()));
                assert_eq!(checkpoint_dir, None);
            }
            _ => panic!("wrong variant"),
        }
        let c = parse_args(&argv("serve --addr 127.0.0.1:0 --dt 20 --store-dir store")).unwrap();
        match c {
            Command::Serve { store_dir, .. } => assert_eq!(store_dir, Some("store".into())),
            _ => panic!("wrong variant"),
        }
    }

    #[test]
    fn analyze_band_flags() {
        let c = parse_args(&argv(
            "analyze --model m.json --input a.csv --band-lo 40 --band-hi 50",
        ))
        .unwrap();
        match c {
            Command::Analyze {
                band_lo, band_hi, ..
            } => {
                assert_eq!(band_lo, Some(40.0));
                assert_eq!(band_hi, Some(50.0));
            }
            _ => panic!("wrong variant"),
        }
    }
}
