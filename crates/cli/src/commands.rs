//! Command implementations. Each returns its human-readable report so the
//! tests can assert on behaviour without capturing stdout.

use crate::args::Command;
use crate::CliError;
use hpc_telemetry::{
    read_snapshots_csv, theta, write_snapshots_csv, LayoutSpec, MachineSpec, Scenario,
};
use imrdmd::compression::compression_report;
use imrdmd::prelude::*;
use rackviz::RackView;
use std::fmt::Write as _;
use std::fs;
use std::path::Path;

/// Executes a parsed command, returning the report text it printed.
pub fn run(cmd: &Command) -> Result<String, CliError> {
    match cmd {
        Command::Synth {
            nodes,
            steps,
            seed,
            out,
        } => synth(*nodes, *steps, *seed, out),
        Command::Fit {
            input,
            dt,
            levels,
            max_cycles,
            threads,
            fit_strategy,
            sketch_seed,
            model,
        } => fit(FitOpts {
            input,
            dt: *dt,
            levels: *levels,
            max_cycles: *max_cycles,
            threads: *threads,
            fit_strategy,
            sketch_seed: *sketch_seed,
            model,
        }),
        Command::Update {
            model,
            input,
            model_out,
            threads,
        } => update(model, input, model_out.as_deref(), *threads),
        Command::Analyze {
            model,
            input,
            band_lo,
            band_hi,
        } => analyze(model, input, *band_lo, *band_hi),
        Command::Render {
            model,
            input,
            layout,
            out,
        } => render(model, input, layout, out),
        Command::Info { model } => info(model),
        Command::Health { model } => health(model),
        Command::Stream {
            input,
            dt,
            chunk,
            levels,
            threads,
            gap_policy,
            fit_strategy,
            sketch_seed,
            store_dir,
            checkpoint_dir,
            checkpoint_every,
            resume,
            metrics_every,
            model,
        } => stream(StreamOpts {
            input,
            dt: *dt,
            chunk: *chunk,
            levels: *levels,
            threads: *threads,
            gap_policy,
            fit_strategy,
            sketch_seed: *sketch_seed,
            store_dir: store_dir.as_deref(),
            checkpoint_dir: checkpoint_dir.as_deref(),
            checkpoint_every: *checkpoint_every,
            resume: *resume,
            metrics_every: *metrics_every,
            model,
        }),
        Command::Serve {
            addr,
            dt,
            levels,
            threads,
            gap_policy,
            fit_strategy,
            sketch_seed,
            store_dir,
            checkpoint_dir,
            checkpoint_every,
            keep_checkpoints,
            durability,
            max_body_mb,
            max_tenants,
            max_inflight,
        } => serve(ServeOpts {
            addr,
            dt: *dt,
            levels: *levels,
            threads: *threads,
            gap_policy,
            fit_strategy,
            sketch_seed: *sketch_seed,
            store_dir: store_dir.as_deref(),
            checkpoint_dir: checkpoint_dir.as_deref(),
            checkpoint_every: *checkpoint_every,
            keep_checkpoints: *keep_checkpoints,
            durability,
            max_body_mb: *max_body_mb,
            max_tenants: *max_tenants,
            max_inflight: *max_inflight,
        }),
        Command::Metrics {
            input,
            dt,
            levels,
            chunk,
            fit_strategy,
            sketch_seed,
            format,
        } => metrics(
            input,
            *dt,
            *levels,
            *chunk,
            fit_strategy,
            *sketch_seed,
            format,
        ),
        Command::Archive {
            model,
            tier,
            out,
            store_dir,
        } => archive(model, tier, out.as_deref(), store_dir.as_deref()),
        Command::Replay {
            archive,
            store_dir,
            from,
            to,
            out,
        } => replay(
            archive.as_deref(),
            store_dir.as_deref(),
            *from,
            *to,
            out.as_deref(),
        ),
    }
}

/// Resolves the persistent-store flags into the directory checkpoints live
/// in. `--store-dir` is the modern spelling (checkpoints under
/// `<store-dir>/checkpoints`); `--checkpoint-dir` is a deprecated alias
/// that still names its directory verbatim. Giving both is ambiguous.
fn resolve_checkpoint_dir(
    store_dir: Option<&Path>,
    checkpoint_dir: Option<&Path>,
) -> Result<Option<std::path::PathBuf>, CliError> {
    match (store_dir, checkpoint_dir) {
        (Some(_), Some(_)) => Err(CliError(
            "--store-dir and --checkpoint-dir are aliases: give only one".into(),
        )),
        (Some(store), None) => Ok(Some(store.join("checkpoints"))),
        (None, Some(dir)) => {
            eprintln!(
                "note: --checkpoint-dir is deprecated; use --store-dir DIR \
                 (checkpoints then live in DIR/checkpoints)"
            );
            Ok(Some(dir.to_path_buf()))
        }
        (None, None) => Ok(None),
    }
}

/// Borrowed view of [`Command::Fit`]'s flags.
struct FitOpts<'a> {
    input: &'a Path,
    dt: f64,
    levels: usize,
    max_cycles: usize,
    threads: usize,
    fit_strategy: &'a str,
    sketch_seed: Option<u64>,
    model: &'a Path,
}

/// Borrowed view of [`Command::Stream`]'s flags, so the implementation
/// doesn't take eleven positional arguments.
struct StreamOpts<'a> {
    input: &'a Path,
    dt: f64,
    chunk: usize,
    levels: usize,
    threads: usize,
    gap_policy: &'a str,
    fit_strategy: &'a str,
    sketch_seed: Option<u64>,
    store_dir: Option<&'a Path>,
    checkpoint_dir: Option<&'a Path>,
    checkpoint_every: usize,
    resume: bool,
    metrics_every: usize,
    model: &'a Path,
}

/// Borrowed view of [`Command::Serve`]'s flags.
struct ServeOpts<'a> {
    addr: &'a str,
    dt: f64,
    levels: usize,
    threads: usize,
    gap_policy: &'a str,
    fit_strategy: &'a str,
    sketch_seed: Option<u64>,
    store_dir: Option<&'a Path>,
    checkpoint_dir: Option<&'a Path>,
    checkpoint_every: usize,
    keep_checkpoints: usize,
    durability: &'a str,
    max_body_mb: usize,
    max_tenants: usize,
    max_inflight: usize,
}

/// Validates the flags and binds the daemon without running it, so tests
/// can grab the ephemeral port and a shutdown handle first. Returns the
/// bound server plus `(restored, corrupt)` shard counts.
fn bind_server(o: &ServeOpts<'_>) -> Result<(imrdmd_serve::Server, usize, usize), CliError> {
    if o.dt <= 0.0 {
        return Err(CliError("--dt must be positive".into()));
    }
    if o.max_body_mb == 0 {
        return Err(CliError("--max-body-mb must be at least 1".into()));
    }
    let policy = GapPolicy::parse(o.gap_policy)
        .ok_or_else(|| CliError(format!("unknown --gap-policy `{}`", o.gap_policy)))?;
    let strategy = parse_fit_strategy(o.fit_strategy, o.sketch_seed)?;
    let durability = imrdmd::wal::Durability::parse(o.durability)
        .ok_or_else(|| CliError(format!("unknown --durability `{}`", o.durability)))?;
    let cfg = imrdmd_serve::ServeConfig {
        model: stream_config(o.dt, o.levels, 2, o.threads, strategy)?,
        policy,
        checkpoint_dir: resolve_checkpoint_dir(o.store_dir, o.checkpoint_dir)?,
        checkpoint_every: o.checkpoint_every.max(1),
        keep_checkpoints: o.keep_checkpoints,
        durability,
        limits: imrdmd_serve::HttpLimits {
            max_body_bytes: o.max_body_mb * 1024 * 1024,
            ..imrdmd_serve::HttpLimits::default()
        },
        max_tenants: o.max_tenants.max(1),
        max_inflight: o.max_inflight.max(1),
        ..imrdmd_serve::ServeConfig::default()
    };
    imrdmd_serve::Server::bind(o.addr, cfg)
        .map_err(|e| CliError(format!("cannot bind {}: {e}", o.addr)))
}

fn serve(o: ServeOpts<'_>) -> Result<String, CliError> {
    let (server, restored, corrupt) = bind_server(&o)?;
    let addr = server.local_addr();
    eprintln!(
        "imrdmd-serve listening on http://{addr} ({restored} shards restored, {corrupt} corrupt)"
    );
    server
        .run()
        .map_err(|e| CliError(format!("server failed: {e}")))?;
    Ok(format!(
        "server on {addr} stopped ({restored} shards restored at boot, {corrupt} corrupt)"
    ))
}

/// Maps the `--fit-strategy`/`--sketch-seed` flags onto [`FitStrategy`].
/// `sketched` uses the library's standard oversampling and power-iteration
/// budget with a fixed default seed, so runs stay reproducible unless a
/// seed is given explicitly.
fn parse_fit_strategy(name: &str, sketch_seed: Option<u64>) -> Result<FitStrategy, CliError> {
    match name {
        "exact" => Ok(FitStrategy::Exact),
        "sketched" => Ok(FitStrategy::Sketched {
            rank_oversample: 8,
            power_iters: 2,
            seed: sketch_seed.unwrap_or(hpc_linalg::DEFAULT_SKETCH_SEED),
        }),
        other => Err(CliError(format!(
            "unknown --fit-strategy `{other}` (expected exact or sketched)"
        ))),
    }
}

/// The streaming configuration every CSV-driven command uses, built (and
/// therefore validated) through the builder-first API.
fn stream_config(
    dt: f64,
    levels: usize,
    max_cycles: usize,
    threads: usize,
    strategy: FitStrategy,
) -> Result<IMrDmdConfig, CliError> {
    let mr = MrDmdConfig::builder()
        .dt(dt)
        .max_levels(levels.max(1))
        .max_cycles(max_cycles.max(1))
        .rank(RankSelection::Svht)
        .n_threads(threads)
        .fit_strategy(strategy)
        .build()?;
    Ok(IMrDmdConfig::builder().mr(mr).build()?)
}

fn load_model(path: &Path) -> Result<IMrDmd, CliError> {
    let json = fs::read_to_string(path)
        .map_err(|e| CliError(format!("cannot read model {}: {e}", path.display())))?;
    Ok(serde_json::from_str(&json)?)
}

fn save_model(path: &Path, model: &IMrDmd) -> Result<(), CliError> {
    fs::write(path, serde_json::to_string(model)?)?;
    Ok(())
}

fn load_csv(path: &Path) -> Result<hpc_linalg::Mat, CliError> {
    let file = fs::File::open(path)
        .map_err(|e| CliError(format!("cannot open {}: {e}", path.display())))?;
    let (m, _first) = read_snapshots_csv(std::io::BufReader::new(file))?;
    Ok(m)
}

fn synth(nodes: usize, steps: usize, seed: u64, out: &Path) -> Result<String, CliError> {
    if nodes == 0 || steps < 2 {
        return Err(CliError("synth needs --nodes ≥ 1 and --steps ≥ 2".into()));
    }
    let mut machine: MachineSpec = theta().scaled(nodes);
    machine.series_per_node = 1;
    let scenario = Scenario::sc_log(machine, steps, seed);
    let data = scenario.generate(0, steps);
    let mut file = std::io::BufWriter::new(fs::File::create(out)?);
    write_snapshots_csv(&mut file, &data, 0)?;
    use std::io::Write as _;
    file.flush()?;
    Ok(format!(
        "wrote {} series × {steps} snapshots (seed {seed}, {} injected anomalies) to {}",
        data.rows(),
        scenario.anomalies().len(),
        out.display()
    ))
}

fn fit(o: FitOpts<'_>) -> Result<String, CliError> {
    if o.dt <= 0.0 {
        return Err(CliError("--dt must be positive".into()));
    }
    let data = load_csv(o.input)?;
    let strategy = parse_fit_strategy(o.fit_strategy, o.sketch_seed)?;
    let cfg = stream_config(o.dt, o.levels, o.max_cycles, o.threads, strategy)?;
    let model = IMrDmd::fit(&data, &cfg);
    save_model(o.model, &model)?;
    Ok(format!(
        "fitted {} series × {} snapshots: {} modes across {} levels → {}",
        model.n_rows(),
        model.n_steps(),
        model.n_modes(),
        model.depth(),
        o.model.display()
    ))
}

fn update(
    model_path: &Path,
    input: &Path,
    model_out: Option<&Path>,
    threads: Option<usize>,
) -> Result<String, CliError> {
    let mut model = load_model(model_path)?;
    if let Some(n) = threads {
        model.set_n_threads(n);
    }
    let batch = load_csv(input)?;
    if batch.rows() != model.n_rows() {
        return Err(CliError(format!(
            "batch has {} series but the model tracks {}",
            batch.rows(),
            model.n_rows()
        )));
    }
    let report = model.partial_fit(&batch);
    let out = model_out.unwrap_or(model_path);
    save_model(out, &model)?;
    Ok(format!(
        "absorbed {} snapshots (drift {:.3e}, {} new modes); model now spans {} snapshots → {}",
        report.batch_len,
        report.drift,
        report.new_subtree_modes,
        model.n_steps(),
        out.display()
    ))
}

fn analyze(
    model_path: &Path,
    input: &Path,
    band_lo: Option<f64>,
    band_hi: Option<f64>,
) -> Result<String, CliError> {
    let model = load_model(model_path)?;
    let data = load_csv(input)?;
    let (zs, band) = zscores(&model, &data, band_lo, band_hi)?;
    let mut out = String::new();
    let spectrum = mode_spectrum(model.nodes());
    let _ = writeln!(
        out,
        "model: {} modes across {} levels",
        model.n_modes(),
        model.depth()
    );
    for (level, power) in power_by_level(&spectrum) {
        let _ = writeln!(out, "  level {level}: total power {power:.3e}");
    }
    let th = ZThresholds::default();
    let states = zs.states(&th);
    let hot: Vec<usize> = states
        .iter()
        .enumerate()
        .filter(|(_, s)| **s == NodeState::Hot)
        .map(|(i, _)| i)
        .collect();
    let idle = states.iter().filter(|s| **s == NodeState::Idle).count();
    let _ = writeln!(
        out,
        "baseline band {:.2}–{:.2} ({} series): {} hot, {} idle, {:.0}% near baseline",
        band.0,
        band.1,
        zs.baseline_rows.len(),
        hot.len(),
        idle,
        zs.fraction_near(&th) * 100.0
    );
    if !hot.is_empty() {
        let _ = writeln!(out, "hot series: {:?}", &hot[..hot.len().min(16)]);
    }
    Ok(out)
}

fn zscores(
    model: &IMrDmd,
    data: &hpc_linalg::Mat,
    band_lo: Option<f64>,
    band_hi: Option<f64>,
) -> Result<(ZScores, (f64, f64)), CliError> {
    if data.rows() != model.n_rows() {
        return Err(CliError(format!(
            "input has {} series but the model tracks {}",
            data.rows(),
            model.n_rows()
        )));
    }
    let mags = row_mode_magnitudes(model.nodes(), &BandFilter::all(), data.rows());
    let band = match (band_lo, band_hi) {
        (Some(lo), Some(hi)) if lo <= hi => (lo, hi),
        (None, None) => {
            // Middle 40% of per-series means.
            let mut means: Vec<f64> = (0..data.rows())
                .map(|i| data.row(i).iter().sum::<f64>() / data.cols().max(1) as f64)
                .collect();
            means.sort_by(|a, b| a.partial_cmp(b).unwrap());
            (means[means.len() * 3 / 10], means[means.len() * 7 / 10])
        }
        _ => {
            return Err(CliError(
                "--band-lo and --band-hi must be given together, lo ≤ hi".into(),
            ))
        }
    };
    let baseline = select_baseline_rows(data, band.0, band.1);
    if baseline.is_empty() {
        return Err(CliError(format!(
            "no series has a mean in the baseline band {:.2}–{:.2}",
            band.0, band.1
        )));
    }
    Ok((ZScores::from_baseline(&mags, &baseline), band))
}

fn render(model_path: &Path, input: &Path, layout: &str, out: &Path) -> Result<String, CliError> {
    let model = load_model(model_path)?;
    let data = load_csv(input)?;
    let spec = LayoutSpec::parse(layout).map_err(|e| CliError(e.to_string()))?;
    if spec.total_nodes() < model.n_rows() {
        return Err(CliError(format!(
            "layout holds {} nodes but the model tracks {} series",
            spec.total_nodes(),
            model.n_rows()
        )));
    }
    let (zs, _) = zscores(&model, &data, None, None)?;
    let machine = MachineSpec {
        name: spec.system.clone(),
        layout: spec,
        n_nodes: model.n_rows(),
        series_per_node: 1,
        sample_interval_s: 0.0,
    };
    let view = RackView::new(&machine)
        .with_values(&zs.z)
        .with_title(format!("{} — z-scores", machine.name));
    fs::write(out, view.to_svg())?;
    Ok(format!("rack view written to {}", out.display()))
}

fn stream(o: StreamOpts<'_>) -> Result<String, CliError> {
    if o.dt <= 0.0 {
        return Err(CliError("--dt must be positive".into()));
    }
    if o.chunk < 2 {
        return Err(CliError("--chunk must be at least 2".into()));
    }
    let policy = GapPolicy::parse(o.gap_policy)
        .ok_or_else(|| CliError(format!("unknown --gap-policy `{}`", o.gap_policy)))?;
    let ckpt_dir = resolve_checkpoint_dir(o.store_dir, o.checkpoint_dir)?;
    let ckpt_dir = ckpt_dir.as_deref();
    if o.resume && ckpt_dir.is_none() {
        return Err(CliError(
            "--resume needs --checkpoint-dir or --store-dir".into(),
        ));
    }
    let strategy = parse_fit_strategy(o.fit_strategy, o.sketch_seed)?;
    let data = load_csv(o.input)?;
    let total = data.cols();

    // Resume from the newest checkpoint if asked; otherwise cold-start from
    // the first chunk. A resumed model already absorbed `n_steps()` columns
    // (including any pending sub-window — it is checkpointed too), so the
    // stream picks up exactly where the interrupted run stopped.
    let mut resumed_from = None;
    let mut guard = IngestGuard::new(policy, data.rows());
    let (mut model, mut done) = match (o.resume, ckpt_dir) {
        (true, Some(dir)) => match latest_checkpoint(dir)? {
            Some(path) => {
                let model = load_checkpoint(&path)?;
                if model.n_rows() != data.rows() {
                    return Err(CliError(format!(
                        "checkpoint tracks {} series but the input has {}",
                        model.n_rows(),
                        data.rows()
                    )));
                }
                let done = model.n_steps();
                resumed_from = Some((path, done));
                (Some(model), done)
            }
            None => (None, 0),
        },
        _ => (None, 0),
    };
    if done > total {
        return Err(CliError(format!(
            "checkpoint spans {done} snapshots but the input has only {total}"
        )));
    }

    let skipped = done;
    let mut checkpointer = ckpt_dir
        .map(|dir| Checkpointer::new(dir, o.checkpoint_every))
        .transpose()?;
    let mut repairs = RepairReport::default();
    let mut chunks = 0usize;
    let mut ckpts = 0usize;
    let mut out = String::new();
    // Metrics are process-wide monotonic totals; zero them at stream start so
    // the emitted JSON-lines count exactly this stream's work.
    if o.metrics_every > 0 {
        imrdmd::obs::reset();
    }
    while done < total {
        let hi = (done + o.chunk).min(total);
        let batch = data.cols_range(done, hi);
        match &mut model {
            None => {
                // First chunk: repair it stand-alone, then cold-start.
                let (clean, rep) = guard.repair(&batch)?;
                repairs.merge(&rep);
                let cfg = stream_config(o.dt, o.levels, 2, o.threads, strategy)?;
                model = Some(IMrDmd::fit(clean.as_ref().unwrap_or(&batch), &cfg));
            }
            Some(m) => {
                let report = m.try_partial_fit(&batch, &mut guard)?;
                repairs.merge(&report.repairs);
            }
        }
        done = hi;
        chunks += 1;
        if o.metrics_every > 0 && chunks.is_multiple_of(o.metrics_every) {
            let _ = writeln!(out, "{}", MetricsLine::capture(done, chunks).to_json());
        }
        if let (Some(ck), Some(m)) = (&mut checkpointer, &model) {
            if ck.tick(m)?.is_some() {
                ckpts += 1;
            }
        }
    }

    let model =
        model.ok_or_else(|| CliError("nothing to stream: the input CSV has no columns".into()))?;
    save_model(o.model, &model)?;
    if let Some((path, at)) = resumed_from {
        let _ = writeln!(out, "resumed from {} at snapshot {at}", path.display());
    }
    let _ = writeln!(
        out,
        "streamed {chunks} chunks ({} snapshots, policy {policy}): {} gaps, {} repaired{}",
        total - skipped,
        repairs.gaps,
        repairs.repaired,
        if repairs.masked_rows.is_empty() {
            String::new()
        } else {
            format!(", {} rows masked", repairs.masked_rows.len())
        }
    );
    if ckpts > 0 {
        let _ = writeln!(out, "wrote {ckpts} checkpoints");
    }
    let _ = writeln!(out, "health: {}", model.health().summary());
    let _ = writeln!(
        out,
        "model now spans {} snapshots ({} modes, {} pending) → {}",
        model.n_steps(),
        model.n_modes(),
        model.pending_len(),
        o.model.display()
    );
    Ok(out)
}

/// Streams `input` through a fit (first chunk cold-start, rest dispatched
/// through the batched execution [`Engine`]) and prints the final process
/// metrics snapshot. Metrics are process-local, so the subcommand generates
/// its own workload rather than reading a model file; routing the rounds
/// through the engine makes the `batch.*` series (kernel groups dispatched,
/// bypasses, ops per group) report the values a fleet deployment would see
/// instead of zeros.
fn metrics(
    input: &Path,
    dt: f64,
    levels: usize,
    chunk: usize,
    fit_strategy: &str,
    sketch_seed: Option<u64>,
    format: &str,
) -> Result<String, CliError> {
    if dt <= 0.0 {
        return Err(CliError("--dt must be positive".into()));
    }
    if chunk < 2 {
        return Err(CliError("--chunk must be at least 2".into()));
    }
    if !matches!(format, "json" | "prom") {
        return Err(CliError(format!(
            "unknown --format `{format}` (expected json or prom)"
        )));
    }
    let data = load_csv(input)?;
    let total = data.cols();
    if total < 2 {
        return Err(CliError("metrics needs at least two snapshots".into()));
    }
    let strategy = parse_fit_strategy(fit_strategy, sketch_seed)?;
    imrdmd::obs::reset();
    let cfg = stream_config(dt, levels, 2, 0, strategy)?;
    let first = chunk.min(total);
    let mut model = IMrDmd::fit(&data.cols_range(0, first), &cfg);
    let mut engine = Engine::with_threads(1);
    let mut done = first;
    while done < total {
        let hi = (done + chunk).min(total);
        let batch = data.cols_range(done, hi);
        let mut jobs = vec![FleetJob {
            tree: &mut model,
            batch: &batch,
            guard: None,
        }];
        for res in engine.run_fleet(&mut jobs) {
            res.map_err(|e| CliError(format!("engine round failed: {e}")))?;
        }
        done = hi;
    }
    let snap = MetricsSnapshot::capture();
    Ok(match format {
        "prom" => snap.to_prometheus(),
        _ => {
            let mut s = snap.to_json();
            s.push('\n');
            s
        }
    })
}

fn info(model_path: &Path) -> Result<String, CliError> {
    let model = load_model(model_path)?;
    let rep = compression_report(model.nodes(), model.n_rows(), model.n_steps());
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{} series × {} snapshots, root rank {}, {} drift samples{}",
        model.n_rows(),
        model.n_steps(),
        model.root_rank(),
        model.drift_log().len(),
        if model.is_stale() { " [STALE]" } else { "" }
    );
    let _ = write!(out, "{}", model.as_mrdmd().tree_summary());
    let _ = writeln!(
        out,
        "storage: raw {:.2} MB → model {:.3} MB ({:.1}x)",
        rep.raw_bytes as f64 / 1e6,
        rep.model_bytes as f64 / 1e6,
        rep.ratio
    );
    Ok(out)
}

fn health(model_path: &Path) -> Result<String, CliError> {
    let model = load_model(model_path)?;
    let h = model.health();
    let mut out = String::new();
    let _ = writeln!(out, "{}", h.summary());
    let _ = writeln!(
        out,
        "root: {}{}",
        h.root.label(),
        h.root
            .cause()
            .map(|c| format!(" — {c}"))
            .unwrap_or_default()
    );
    for l in &h.levels {
        let _ = writeln!(
            out,
            "  level {}: {} healthy, {} degraded",
            l.level, l.healthy, l.degraded
        );
    }
    let _ = writeln!(
        out,
        "coverage: {:.1}% ({} of {} windows served by a live fit)",
        h.coverage * 100.0,
        h.healthy_nodes,
        h.healthy_nodes + h.degraded_nodes
    );
    let _ = writeln!(
        out,
        "solver: eig {} iterations / {} restarts, inner svd {} sweeps, isvd drift {:.3e} ({} breaches)",
        h.solver.last_eig_iterations,
        h.solver.last_eig_restarts,
        h.solver.last_inner_svd_sweeps,
        h.solver.isvd_drift,
        h.solver.isvd_drift_breaches
    );
    if let Some(e) = &h.last_error {
        let _ = writeln!(out, "last error: {e}");
    }
    Ok(out)
}

fn archive(
    model_path: &Path,
    tier: &str,
    out: Option<&Path>,
    store_dir: Option<&Path>,
) -> Result<String, CliError> {
    let tier = QuantTier::parse(tier).ok_or_else(|| {
        CliError(format!(
            "unknown --tier `{tier}` (expected f64, f32, or q16)"
        ))
    })?;
    let model = load_model(model_path)?;
    // --out wins; otherwise the store root's archives/ subdir; otherwise a
    // sibling of the model file.
    let path = match (out, store_dir) {
        (Some(p), _) => p.to_path_buf(),
        (None, Some(store)) => {
            let dir = store.join("archives");
            fs::create_dir_all(&dir)
                .map_err(|e| CliError(format!("cannot create {}: {e}", dir.display())))?;
            let stem = model_path
                .file_stem()
                .and_then(|s| s.to_str())
                .unwrap_or("model");
            dir.join(format!("{stem}.{}.arch", tier.as_str()))
        }
        (None, None) => model_path.with_extension("arch"),
    };
    let info = write_archive(&model, &path, tier)
        .map_err(|e| CliError(format!("cannot write archive: {e}")))?;
    let raw_bytes = (info.n_rows * info.n_steps * std::mem::size_of::<f64>()) as f64;
    Ok(format!(
        "archived {} series × {} snapshots at tier {}: {} node blocks, {:.3} MB ({:.1}x vs raw) → {}",
        info.n_rows,
        info.n_steps,
        info.tier,
        info.n_nodes,
        info.bytes as f64 / 1e6,
        raw_bytes / info.bytes as f64,
        path.display()
    ))
}

/// Picks the newest (by mtime) `*.arch` file under `dir`.
fn newest_archive(dir: &Path) -> Result<std::path::PathBuf, CliError> {
    let entries =
        fs::read_dir(dir).map_err(|e| CliError(format!("cannot read {}: {e}", dir.display())))?;
    let mut newest: Option<(std::time::SystemTime, std::path::PathBuf)> = None;
    for entry in entries {
        let entry = entry?;
        let path = entry.path();
        if path.extension().and_then(|e| e.to_str()) != Some("arch") {
            continue;
        }
        let modified = entry.metadata()?.modified()?;
        if newest.as_ref().is_none_or(|(t, _)| modified > *t) {
            newest = Some((modified, path));
        }
    }
    newest
        .map(|(_, p)| p)
        .ok_or_else(|| CliError(format!("no .arch files under {}", dir.display())))
}

fn replay(
    archive: Option<&Path>,
    store_dir: Option<&Path>,
    from: Option<usize>,
    to: Option<usize>,
    out: Option<&Path>,
) -> Result<String, CliError> {
    let path = match (archive, store_dir) {
        (Some(p), _) => p.to_path_buf(),
        (None, Some(store)) => newest_archive(&store.join("archives"))?,
        (None, None) => {
            return Err(CliError(
                "replay needs --archive FILE or --store-dir DIR".into(),
            ))
        }
    };
    let mut reader = ArchiveReader::open(&path)
        .map_err(|e| CliError(format!("cannot open archive {}: {e}", path.display())))?;
    let info = *reader.info();
    let t0 = from.unwrap_or(0);
    let t1 = to.unwrap_or(info.n_steps);
    let data = reader
        .replay(t0, t1)
        .map_err(|e| CliError(format!("replay failed: {e}")))?;
    let mut report = String::new();
    let _ = writeln!(
        report,
        "replayed [{t0}, {t1}) of {} snapshots from {} (tier {}, {} of {} blocks read)",
        info.n_steps,
        path.display(),
        info.tier,
        reader.blocks_read(),
        info.n_nodes
    );
    if let Some(out) = out {
        let mut file = std::io::BufWriter::new(fs::File::create(out)?);
        write_snapshots_csv(&mut file, &data, t0)?;
        use std::io::Write as _;
        file.flush()?;
        let _ = writeln!(
            report,
            "wrote {} series × {} snapshots to {}",
            data.rows(),
            data.cols(),
            out.display()
        );
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::parse_args;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("imrdmd-cli-tests");
        fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn synth_fit_update_analyze_info_pipeline() {
        let csv = tmp("pipeline.csv");
        let csv2 = tmp("pipeline2.csv");
        let model = tmp("pipeline.json");

        // synth
        let r = run(&parse_args(&argv(&format!(
            "synth --nodes 24 --steps 700 --seed 9 --out {}",
            csv.display()
        )))
        .unwrap())
        .unwrap();
        assert!(r.contains("24 series"));

        // split into initial + batch by rewriting CSVs
        let data = load_csv(&csv).unwrap();
        let mut f = fs::File::create(&csv).unwrap();
        write_snapshots_csv(&mut f, &data.cols_range(0, 500), 0).unwrap();
        let mut f = fs::File::create(&csv2).unwrap();
        write_snapshots_csv(&mut f, &data.cols_range(500, 700), 500).unwrap();

        // fit
        let r = run(&parse_args(&argv(&format!(
            "fit --input {} --dt 20 --levels 4 --model {}",
            csv.display(),
            model.display()
        )))
        .unwrap())
        .unwrap();
        assert!(r.contains("500 snapshots"), "{r}");

        // update
        let r = run(&parse_args(&argv(&format!(
            "update --model {} --input {}",
            model.display(),
            csv2.display()
        )))
        .unwrap())
        .unwrap();
        assert!(r.contains("absorbed 200 snapshots"), "{r}");
        assert!(r.contains("700 snapshots"), "{r}");

        // analyze (auto band)
        let mut full = fs::File::create(&csv).unwrap();
        write_snapshots_csv(&mut full, &data, 0).unwrap();
        let r = run(&parse_args(&argv(&format!(
            "analyze --model {} --input {}",
            model.display(),
            csv.display()
        )))
        .unwrap())
        .unwrap();
        assert!(r.contains("baseline band"), "{r}");
        assert!(r.contains("near baseline"), "{r}");

        // info
        let r =
            run(&parse_args(&argv(&format!("info --model {}", model.display()))).unwrap()).unwrap();
        assert!(r.contains("24 series × 700 snapshots"), "{r}");
        assert!(r.contains("storage:"), "{r}");

        // health — a clean fit reports every window healthy.
        let r = run(&parse_args(&argv(&format!("health --model {}", model.display()))).unwrap())
            .unwrap();
        assert!(r.contains("root healthy"), "{r}");
        assert!(r.contains("coverage: 100.0%"), "{r}");
        assert!(r.contains("level 1: 1 healthy, 0 degraded"), "{r}");
        assert!(r.contains("solver: eig"), "{r}");
        assert!(!r.contains("last error"), "{r}");
    }

    #[test]
    fn render_produces_svg() {
        let csv = tmp("render.csv");
        let model = tmp("render.json");
        let svg = tmp("render.svg");
        run(&parse_args(&argv(&format!(
            "synth --nodes 16 --steps 300 --out {}",
            csv.display()
        )))
        .unwrap())
        .unwrap();
        run(&parse_args(&argv(&format!(
            "fit --input {} --dt 20 --levels 3 --model {}",
            csv.display(),
            model.display()
        )))
        .unwrap())
        .unwrap();
        let cmd = Command::Render {
            model: model.clone(),
            input: csv.clone(),
            layout: "mini 1 1 row0-0:0-3 1 c:0 1 s:0-3 1 b:0 n:0".into(),
            out: svg.clone(),
        };
        let r = run(&cmd).unwrap();
        assert!(r.contains("rack view written"));
        let contents = fs::read_to_string(&svg).unwrap();
        assert!(contents.contains("</svg>"));
    }

    #[test]
    fn update_rejects_mismatched_series() {
        let csv = tmp("mismatch.csv");
        let csv_bad = tmp("mismatch_bad.csv");
        let model = tmp("mismatch.json");
        run(&parse_args(&argv(&format!(
            "synth --nodes 8 --steps 300 --out {}",
            csv.display()
        )))
        .unwrap())
        .unwrap();
        run(&parse_args(&argv(&format!(
            "fit --input {} --dt 20 --levels 3 --model {}",
            csv.display(),
            model.display()
        )))
        .unwrap())
        .unwrap();
        run(&parse_args(&argv(&format!(
            "synth --nodes 9 --steps 100 --out {}",
            csv_bad.display()
        )))
        .unwrap())
        .unwrap();
        let err = run(&Command::Update {
            model: model.clone(),
            input: csv_bad.clone(),
            model_out: None,
            threads: None,
        })
        .unwrap_err();
        assert!(err.0.contains("9 series"), "{err}");
    }

    #[test]
    fn missing_files_are_clean_errors() {
        let err = run(&Command::Info {
            model: tmp("does-not-exist.json"),
        })
        .unwrap_err();
        assert!(err.0.contains("cannot read model"));
        let err = run(&Command::Fit {
            input: tmp("missing.csv"),
            dt: 1.0,
            levels: 3,
            max_cycles: 2,
            threads: 0,
            fit_strategy: "exact".into(),
            sketch_seed: None,
            model: tmp("m.json"),
        })
        .unwrap_err();
        assert!(err.0.contains("cannot open"));
    }

    #[test]
    fn fit_strategy_sketched_is_seed_reproducible() {
        let csv = tmp("sketched.csv");
        let m1 = tmp("sketched1.json");
        let m2 = tmp("sketched2.json");
        run(&parse_args(&argv(&format!(
            "synth --nodes 16 --steps 400 --seed 11 --out {}",
            csv.display()
        )))
        .unwrap())
        .unwrap();
        // Two sketched fits with the same seed write identical models.
        for m in [&m1, &m2] {
            let r = run(&parse_args(&argv(&format!(
                "fit --input {} --dt 20 --levels 4 --fit-strategy sketched \
                 --sketch-seed 5 --model {}",
                csv.display(),
                m.display()
            )))
            .unwrap())
            .unwrap();
            assert!(r.contains("fitted 16 series"), "{r}");
        }
        assert_eq!(
            fs::read_to_string(&m1).unwrap(),
            fs::read_to_string(&m2).unwrap(),
            "sketched fit must be seed-reproducible"
        );
        // Unknown strategies are a clean error.
        let err = run(&parse_args(&argv(&format!(
            "fit --input {} --dt 20 --fit-strategy frob --model {}",
            csv.display(),
            m1.display()
        )))
        .unwrap())
        .unwrap_err();
        assert!(err.0.contains("unknown --fit-strategy"), "{err}");
    }

    #[test]
    fn stream_with_gaps_checkpoints_and_resumes() {
        let csv = tmp("stream.csv");
        let model_a = tmp("stream_a.json");
        let model_b = tmp("stream_b.json");
        let ckpts = tmp("stream_ckpts");
        let _ = fs::remove_dir_all(&ckpts);

        run(&parse_args(&argv(&format!(
            "synth --nodes 16 --steps 600 --seed 3 --out {}",
            csv.display()
        )))
        .unwrap())
        .unwrap();

        // Punch NaN gaps into the CSV, then stream it with hold repair.
        let mut data = load_csv(&csv).unwrap();
        data[(2, 100)] = f64::NAN;
        data[(2, 101)] = f64::NAN;
        data[(7, 350)] = f64::NAN;
        let mut f = fs::File::create(&csv).unwrap();
        write_snapshots_csv(&mut f, &data, 0).unwrap();

        let r = run(&parse_args(&argv(&format!(
            "stream --input {} --dt 20 --chunk 100 --levels 4 --gap-policy hold \
             --checkpoint-dir {} --checkpoint-every 2 --model {}",
            csv.display(),
            ckpts.display(),
            model_a.display()
        )))
        .unwrap())
        .unwrap();
        assert!(r.contains("streamed 6 chunks"), "{r}");
        assert!(r.contains("3 gaps, 3 repaired"), "{r}");
        assert!(r.contains("600 snapshots"), "{r}");
        assert!(r.contains("wrote 3 checkpoints"), "{r}");
        assert!(r.contains("health: root healthy"), "{r}");

        // Resume: the newest checkpoint spans all 600 snapshots, so a
        // `--resume` rerun is a no-op that duplicates no work…
        let r = run(&parse_args(&argv(&format!(
            "stream --input {} --dt 20 --chunk 100 --gap-policy hold \
             --checkpoint-dir {} --resume --model {}",
            csv.display(),
            ckpts.display(),
            model_b.display()
        )))
        .unwrap())
        .unwrap();
        assert!(r.contains("at snapshot 600"), "{r}");
        assert!(r.contains("streamed 0 chunks (0 snapshots"), "{r}");

        // …but with 200 fresh columns appended it picks up at 600 exactly.
        let longer = data.hstack(&data.cols_range(0, 200));
        let mut f = fs::File::create(&csv).unwrap();
        write_snapshots_csv(&mut f, &longer, 0).unwrap();
        let r = run(&parse_args(&argv(&format!(
            "stream --input {} --dt 20 --chunk 100 --gap-policy hold \
             --checkpoint-dir {} --resume --model {}",
            csv.display(),
            ckpts.display(),
            model_b.display()
        )))
        .unwrap())
        .unwrap();
        assert!(r.contains("at snapshot 600"), "{r}");
        assert!(r.contains("streamed 2 chunks (200 snapshots"), "{r}");
        assert!(r.contains("model now spans 800 snapshots"), "{r}");

        // A reject-policy stream over gappy data is a clean error.
        let err = run(&parse_args(&argv(&format!(
            "stream --input {} --dt 20 --chunk 100 --model {}",
            csv.display(),
            model_a.display()
        )))
        .unwrap())
        .unwrap_err();
        assert!(err.0.contains("non-finite"), "{err}");
    }

    #[test]
    fn stream_emits_metrics_lines_and_metrics_subcommand_renders() {
        let csv = tmp("metrics.csv");
        let model = tmp("metrics.json");
        run(&parse_args(&argv(&format!(
            "synth --nodes 12 --steps 400 --seed 5 --out {}",
            csv.display()
        )))
        .unwrap())
        .unwrap();

        let r = run(&parse_args(&argv(&format!(
            "stream --input {} --dt 20 --chunk 100 --levels 3 --metrics-every 2 --model {}",
            csv.display(),
            model.display()
        )))
        .unwrap())
        .unwrap();
        // 4 chunks, a line every 2nd → 2 JSON lines, each a parseable
        // MetricsLine carrying the running counters.
        let lines: Vec<&str> = r.lines().filter(|l| l.starts_with('{')).collect();
        assert_eq!(lines.len(), 2, "{r}");
        for line in &lines {
            let parsed: MetricsLine = serde_json::from_str(line).unwrap();
            // Counters are process-global: other tests may run concurrently,
            // so assert lower bounds only.
            assert!(parsed.snapshot.counter("round.count").unwrap_or(0) >= 1);
            assert!(parsed.snapshot.counter("gemm.calls").unwrap_or(0) >= 1);
        }
        let last: MetricsLine = serde_json::from_str(lines[1]).unwrap();
        assert_eq!(last.step, 400);
        assert_eq!(last.round, 4);

        // The metrics subcommand over the same CSV, both formats.
        let r = run(&parse_args(&argv(&format!(
            "metrics --input {} --dt 20 --levels 3 --chunk 100",
            csv.display()
        )))
        .unwrap())
        .unwrap();
        let snap: MetricsSnapshot = serde_json::from_str(r.trim()).unwrap();
        assert!(snap.counter("gemm.calls").unwrap_or(0) >= 1);
        let r = run(&parse_args(&argv(&format!(
            "metrics --input {} --dt 20 --levels 3 --chunk 100 --format prom",
            csv.display()
        )))
        .unwrap())
        .unwrap();
        assert!(r.contains("# TYPE gemm_calls counter"), "{r}");
        assert!(r.contains("# TYPE gemm_ns histogram"), "{r}");

        let err = run(&parse_args(&argv(&format!(
            "metrics --input {} --dt 20 --format yaml",
            csv.display()
        )))
        .unwrap())
        .unwrap_err();
        assert!(err.0.contains("unknown --format"), "{err}");
    }

    #[test]
    fn stream_flag_validation() {
        let err = run(&parse_args(&argv(
            "stream --input a.csv --dt 20 --model m.json --gap-policy frob",
        ))
        .unwrap())
        .unwrap_err();
        assert!(err.0.contains("unknown --gap-policy"), "{err}");
        let err = run(&parse_args(&argv(
            "stream --input a.csv --dt 20 --model m.json --resume",
        ))
        .unwrap())
        .unwrap_err();
        assert!(err.0.contains("--resume needs --checkpoint-dir"), "{err}");
        let err = run(&parse_args(&argv(
            "stream --input a.csv --dt 20 --model m.json --store-dir s --checkpoint-dir c",
        ))
        .unwrap())
        .unwrap_err();
        assert!(err.0.contains("give only one"), "{err}");
        let err = run(&parse_args(&argv("stream --input a.csv --dt 0 --model m.json")).unwrap())
            .unwrap_err();
        assert!(err.0.contains("--dt must be positive"), "{err}");
    }

    #[test]
    fn render_rejects_undersized_layout() {
        let csv = tmp("small_layout.csv");
        let model = tmp("small_layout.json");
        run(&parse_args(&argv(&format!(
            "synth --nodes 16 --steps 200 --out {}",
            csv.display()
        )))
        .unwrap())
        .unwrap();
        run(&parse_args(&argv(&format!(
            "fit --input {} --dt 20 --levels 3 --model {}",
            csv.display(),
            model.display()
        )))
        .unwrap())
        .unwrap();
        let err = run(&Command::Render {
            model,
            input: csv,
            layout: "tiny 1 1 row0-0:0-1 1 c:0 1 s:0 1 b:0 n:0".into(),
            out: tmp("never.svg"),
        })
        .unwrap_err();
        assert!(err.0.contains("layout holds 2 nodes"), "{err}");
    }

    #[test]
    fn archive_replay_roundtrip_is_bitwise_at_f64() {
        let csv = tmp("arch.csv");
        let model_path = tmp("arch.json");
        let store = tmp("arch_store");
        let out_csv = tmp("arch_replay.csv");
        let _ = fs::remove_dir_all(&store);

        run(&parse_args(&argv(&format!(
            "synth --nodes 12 --steps 400 --seed 7 --out {}",
            csv.display()
        )))
        .unwrap())
        .unwrap();
        run(&parse_args(&argv(&format!(
            "fit --input {} --dt 20 --levels 4 --model {}",
            csv.display(),
            model_path.display()
        )))
        .unwrap())
        .unwrap();

        // Archive into the store root at the lossless tier.
        let r = run(&parse_args(&argv(&format!(
            "archive --model {} --tier f64 --store-dir {}",
            model_path.display(),
            store.display()
        )))
        .unwrap())
        .unwrap();
        assert!(r.contains("tier f64"), "{r}");
        assert!(store.join("archives/arch.f64.arch").is_file(), "{r}");

        // Replay a sub-range from the store's newest archive to CSV…
        let r = run(&parse_args(&argv(&format!(
            "replay --store-dir {} --from 100 --to 300 --out {}",
            store.display(),
            out_csv.display()
        )))
        .unwrap())
        .unwrap();
        assert!(r.contains("replayed [100, 300) of 400 snapshots"), "{r}");
        assert!(r.contains("12 series × 200 snapshots"), "{r}");

        // …and it matches the in-memory reconstruction bit for bit (the CSV
        // writes shortest-roundtrip f64, so equality survives the text hop).
        let replayed = load_csv(&out_csv).unwrap();
        let model = load_model(&model_path).unwrap();
        let expect = model.reconstruct_range(100, 300);
        assert_eq!((replayed.rows(), replayed.cols()), (12, 200));
        for i in 0..expect.rows() {
            for j in 0..expect.cols() {
                assert_eq!(
                    replayed[(i, j)].to_bits(),
                    expect[(i, j)].to_bits(),
                    "replay must be bitwise at f64 (row {i}, col {j})"
                );
            }
        }

        // Flag validation is clean on both subcommands.
        let err = run(&parse_args(&argv(&format!(
            "archive --model {} --tier f16",
            model_path.display()
        )))
        .unwrap())
        .unwrap_err();
        assert!(err.0.contains("unknown --tier"), "{err}");
        let err = run(&parse_args(&argv("replay --from 0")).unwrap()).unwrap_err();
        assert!(err.0.contains("--archive FILE or --store-dir DIR"), "{err}");
    }

    #[test]
    fn serve_rejects_bad_flags() {
        let bad_dt = bind_server(&ServeOpts {
            addr: "127.0.0.1:0",
            dt: 0.0,
            levels: 4,
            threads: 1,
            gap_policy: "interpolate",
            fit_strategy: "exact",
            sketch_seed: None,
            store_dir: None,
            checkpoint_dir: None,
            checkpoint_every: 1,
            keep_checkpoints: 3,
            durability: "interval",
            max_body_mb: 32,
            max_tenants: 16,
            max_inflight: 16,
        })
        .unwrap_err();
        assert!(bad_dt.0.contains("--dt"), "{bad_dt}");

        let bad_policy = bind_server(&ServeOpts {
            addr: "127.0.0.1:0",
            dt: 20.0,
            levels: 4,
            threads: 1,
            gap_policy: "yolo",
            fit_strategy: "exact",
            sketch_seed: None,
            store_dir: None,
            checkpoint_dir: None,
            checkpoint_every: 1,
            keep_checkpoints: 3,
            durability: "interval",
            max_body_mb: 32,
            max_tenants: 16,
            max_inflight: 16,
        })
        .unwrap_err();
        assert!(bad_policy.0.contains("gap-policy"), "{bad_policy}");
    }

    #[test]
    fn serve_binds_answers_healthz_and_shuts_down() {
        use std::io::{Read as _, Write as _};

        let (server, restored, corrupt) = bind_server(&ServeOpts {
            addr: "127.0.0.1:0",
            dt: 20.0,
            levels: 4,
            threads: 1,
            gap_policy: "interpolate",
            fit_strategy: "exact",
            sketch_seed: None,
            store_dir: None,
            checkpoint_dir: None,
            checkpoint_every: 1,
            keep_checkpoints: 3,
            durability: "interval",
            max_body_mb: 4,
            max_tenants: 16,
            max_inflight: 16,
        })
        .unwrap();
        assert_eq!((restored, corrupt), (0, 0));
        let addr = server.local_addr();
        let handle = server.handle();
        let worker = std::thread::spawn(move || server.run());

        let mut conn = std::net::TcpStream::connect(addr).unwrap();
        conn.write_all(b"GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n")
            .unwrap();
        let mut reply = String::new();
        conn.read_to_string(&mut reply).unwrap();
        assert!(reply.starts_with("HTTP/1.1 200"), "{reply}");
        assert!(reply.contains("\"status\":\"ok\""), "{reply}");

        handle.shutdown();
        worker.join().unwrap().unwrap();
    }
}
