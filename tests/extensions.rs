//! Integration tests for the suite's extensions of the paper's future-work
//! items: subtree refresh, incremental sensor addition, forecasting,
//! compression accounting, the windowed-mrDMD comparator, log I/O, and
//! streaming statistics.

use mrdmd_suite::core::compression::compression_report;
use mrdmd_suite::prelude::*;
use mrdmd_suite::telemetry::{
    read_hw_log, read_job_log, read_snapshots_csv, write_hw_log, write_job_log,
    write_snapshots_csv, StreamStats,
};

fn scenario(n_nodes: usize, total: usize) -> Scenario {
    let mut machine = theta().scaled(n_nodes);
    machine.series_per_node = 1;
    Scenario::sc_log(machine, total, 17)
}

fn cfg(dt: f64) -> IMrDmdConfig {
    IMrDmdConfig {
        mr: MrDmdConfig {
            dt,
            max_levels: 4,
            max_cycles: 2,
            rank: RankSelection::Svht,
            ..MrDmdConfig::default()
        },
        keep_history: true,
        ..IMrDmdConfig::default()
    }
}

#[test]
fn refresh_subtrees_after_long_stream_recovers_accuracy() {
    let s = scenario(32, 1024);
    let data = s.generate(0, 1024);
    let c = cfg(s.dt());
    let mut model = IMrDmd::fit(&data.cols_range(0, 512), &c);
    for k in 0..4 {
        let lo = 512 + 128 * k;
        model.partial_fit(&data.cols_range(lo, lo + 128));
    }
    let drifted = model.reconstruct().fro_dist(&data);
    model.refresh_subtrees();
    let refreshed = model.reconstruct().fro_dist(&data);
    // The refreshed tree (proper halving against the current root) must not
    // be meaningfully worse, and usually is much better.
    assert!(refreshed <= drifted * 1.1 + 1e-9, "{drifted} → {refreshed}");
    // And it matches a batch fit's quality within a modest factor.
    let batch = MrDmd::fit(&data, &c.mr).reconstruct().fro_dist(&data);
    assert!(
        refreshed <= batch * 2.0 + 1e-9,
        "refreshed {refreshed} vs batch {batch}"
    );
}

#[test]
fn add_series_then_zscores_cover_new_sensors() {
    let s = scenario(24, 512);
    let data = s.generate(0, 512);
    let c = cfg(s.dt());
    let mut model = IMrDmd::fit(&data.rows_range(0, 16), &c);
    model.add_series(&data.rows_range(16, 24));
    assert_eq!(model.n_rows(), 24);
    // Downstream analysis covers all 24 sensors.
    let mags = row_mode_magnitudes(model.nodes(), &BandFilter::all(), 24);
    assert_eq!(mags.len(), 24);
    assert!(
        mags[16..].iter().any(|&m| m > 0.0),
        "new sensors must carry magnitude"
    );
    let z = ZScores::from_baseline(&mags, &(0..12).collect::<Vec<_>>());
    assert!(z.z.iter().all(|v| v.is_finite()));
}

#[test]
fn forecast_beats_zero_and_respects_shape() {
    let s = scenario(16, 700);
    let data = s.generate(0, 700);
    let c = cfg(s.dt());
    let model = IMrDmd::fit(&data.cols_range(0, 636), &c);
    let fc = model.forecast(64);
    assert_eq!(fc.shape(), (16, 64));
    let truth = data.cols_range(636, 700);
    // Compare against predicting the last observed column held constant —
    // a standard naive baseline.
    let last_col = data.col(635);
    let naive = hpc_linalg::Mat::from_fn(16, 64, |i, _| last_col[i]);
    let err_fc = fc.fro_dist(&truth);
    let err_naive = naive.fro_dist(&truth);
    // DMD extrapolation should at least stay in the same league as the
    // naive hold (and usually beat the zero predictor decisively).
    assert!(
        err_fc < truth.fro_norm(),
        "forecast worse than zero predictor"
    );
    assert!(
        err_fc < 3.0 * err_naive,
        "forecast err {err_fc} vs naive hold {err_naive}"
    );
}

#[test]
fn windowed_comparator_full_pipeline() {
    let s = scenario(24, 900);
    let data = s.generate(0, 900);
    let mr = cfg(s.dt()).mr;
    let wcfg = WindowedConfig {
        mr,
        window: 300,
        overlap: 60,
    };
    let mut w = WindowedMrDmd::fit(&data.cols_range(0, 300), &wcfg);
    let mut inc = IMrDmd::fit(&data.cols_range(0, 300), &cfg(s.dt()));
    for start in (300..900).step_by(200) {
        let batch = data.cols_range(start, (start + 200).min(900));
        w.partial_fit(&batch);
        inc.partial_fit(&batch);
    }
    assert_eq!(w.n_steps(), 900);
    // Both reconstruct the covered region sanely.
    let rel_w = w
        .reconstruct_range(0, 780)
        .fro_dist(&data.cols_range(0, 780))
        / data.cols_range(0, 780).fro_norm();
    let rel_i = inc.reconstruct().fro_dist(&data) / data.fro_norm();
    assert!(rel_w < 1.0, "windowed rel {rel_w}");
    assert!(rel_i < 1.0, "incremental rel {rel_i}");
}

#[test]
fn compression_report_from_streamed_model() {
    let s = scenario(32, 2048);
    let data = s.generate(0, 2048);
    let model = IMrDmd::fit(&data, &cfg(s.dt()));
    let rep = compression_report(model.nodes(), model.n_rows(), model.n_steps());
    assert!(rep.ratio > 2.0, "ratio {}", rep.ratio);
    assert_eq!(rep.raw_bytes, 32 * 2048 * 8);
}

#[test]
fn logs_roundtrip_and_feed_the_pipeline() {
    let s = scenario(16, 400);
    let data = s.generate(0, 400);
    // Snapshots → CSV → back → identical analysis result.
    let mut csv = Vec::new();
    write_snapshots_csv(&mut csv, &data, 0).unwrap();
    let (back, first) = read_snapshots_csv(&csv[..]).unwrap();
    assert_eq!(first, 0);
    let m1 = IMrDmd::fit(&data, &cfg(s.dt()));
    let m2 = IMrDmd::fit(&back, &cfg(s.dt()));
    assert!(m1.reconstruct().fro_dist(&m2.reconstruct()) < 1e-9);
    // Job and hardware logs round-trip alongside.
    let mut jbuf = Vec::new();
    write_job_log(&mut jbuf, s.job_log()).unwrap();
    let jobs = read_job_log(&jbuf[..], 16).unwrap();
    assert_eq!(jobs.jobs.len(), s.job_log().jobs.len());
    let hw = HwLog::synthesize(16, 400, s.anomalies(), 1.0, 17);
    let mut hbuf = Vec::new();
    write_hw_log(&mut hbuf, &hw).unwrap();
    assert_eq!(
        read_hw_log(&hbuf[..]).unwrap().events.len(),
        hw.events.len()
    );
}

#[test]
fn stream_stats_drive_adaptive_baselines() {
    let s = scenario(32, 600);
    let mut stats = StreamStats::new(32, 0.05);
    let c = cfg(s.dt());
    let mut model: Option<IMrDmd> = None;
    for batch in ChunkStream::new(&s, 0, 600, 150) {
        stats.absorb(&batch);
        match &mut model {
            None => model = Some(IMrDmd::fit(&batch, &c)),
            Some(m) => {
                m.partial_fit(&batch);
            }
        }
    }
    let model = model.unwrap();
    // Adaptive baseline: the middle 40% of recent levels.
    let (lo, hi) = stats.recent_quantile_band(0.3, 0.7);
    assert!(hi >= lo);
    let baseline = stats.baseline_rows_recent(lo, hi);
    assert!(!baseline.is_empty());
    let mags = row_mode_magnitudes(model.nodes(), &BandFilter::all(), 32);
    let z = ZScores::from_baseline(&mags, &baseline);
    assert!(z.z.iter().all(|v| v.is_finite()));
}

#[test]
fn heatmap_of_reconstruction_renders() {
    let s = scenario(24, 300);
    let data = s.generate(0, 300);
    let model = IMrDmd::fit(&data, &cfg(s.dt()));
    let rec = model.reconstruct();
    let svg = mrdmd_suite::viz::heatmap_svg(
        &rec,
        &mrdmd_suite::viz::HeatmapConfig {
            title: "recon".into(),
            ..Default::default()
        },
    );
    assert!(svg.contains("</svg>"));
    assert!(svg.contains(">recon</text>"));
}
