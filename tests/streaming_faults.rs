//! Hardened-ingest integration tests: corrupted telemetry streams survive
//! end to end, checkpoints restore bitwise, and every failure mode the PR
//! fixed has a regression test that fails on the pre-PR code.

use mrdmd_suite::prelude::*;
use std::fs;
use std::path::PathBuf;

const TAU: f64 = std::f64::consts::TAU;

/// Deterministic multiscale telemetry-like signal.
fn signal(p: usize, t: usize, dt: f64) -> Mat {
    Mat::from_fn(p, t, |i, j| {
        let x = i as f64 / p as f64;
        let tt = j as f64 * dt;
        50.0 + 4.0 * (TAU * tt / 9000.0 + 2.0 * x).sin()
            + 1.5 * (TAU * tt / 900.0 + 5.0 * x).cos()
            + 0.4 * (TAU * tt / 90.0 + 9.0 * x).sin()
    })
}

fn cfg(dt: f64, levels: usize) -> IMrDmdConfig {
    IMrDmdConfig {
        mr: MrDmdConfig {
            dt,
            max_levels: levels,
            max_cycles: 2,
            rank: RankSelection::Svht,
            ..MrDmdConfig::default()
        },
        keep_history: true,
        ..IMrDmdConfig::default()
    }
}

fn bits(m: &Mat) -> Vec<u64> {
    m.as_slice().iter().map(|v| v.to_bits()).collect()
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("imrdmd-streaming-faults");
    fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

/// The acceptance e2e: a scenario stream corrupted by the fault injector
/// (NaN runs, dropped samples, whole-sensor dropout) flows through the
/// guarded ingest to completion — no panic, and the reconstruction holds no
/// NaN because the guard repaired every hole before it reached the model.
#[test]
fn faulty_stream_survives_guarded_ingest_end_to_end() {
    let n_nodes = 24;
    let total = 1200;
    let chunk = 150;
    let mut machine = theta().scaled(n_nodes);
    machine.series_per_node = 1;
    let scenario = Scenario::sc_log(machine, total, 11);
    let c = cfg(scenario.dt(), 4);

    let faults = FaultConfig {
        seed: 4242,
        drop_prob: 0.003,
        nan_run_prob: 0.8,
        nan_run_max_len: 20,
        sensor_dropout_prob: 0.3,
        duplicate_prob: 0.0,
        pathological_prob: 0.0,
    };
    let mut stream = FaultInjector::new(ChunkStream::new(&scenario, 0, total, chunk), faults);

    let first = stream.next().unwrap();
    let mut guard = IngestGuard::new(GapPolicy::Interpolate, n_nodes);
    let (clean, first_repairs) = guard.repair(&first).unwrap();
    let mut model = IMrDmd::fit(clean.as_ref().unwrap_or(&first), &c);

    let mut total_gaps = first_repairs.gaps;
    let mut total_repaired = first_repairs.repaired;
    for batch in stream.by_ref() {
        let report = model.try_partial_fit(&batch, &mut guard).unwrap();
        total_gaps += report.repairs.gaps;
        total_repaired += report.repairs.repaired;
    }
    assert_eq!(model.n_steps(), total);
    assert!(
        total_gaps > 0,
        "test premise: the injector actually corrupted the stream"
    );
    assert_eq!(total_gaps, total_repaired, "every gap was repaired");
    // The injector's own ledger agrees something was injected.
    assert!(!stream.events().is_empty());

    let rec = model.reconstruct();
    assert!(
        rec.as_slice().iter().all(|v| v.is_finite()),
        "no NaN leaked into the model"
    );
    // The repaired fit still tracks the clean ground truth to a sane error.
    let truth = scenario.generate(0, total);
    let rel = rec.fro_dist(&truth) / truth.fro_norm();
    assert!(rel < 0.5, "relative error {rel} despite stream faults");
}

/// Reject policy: the first corrupted batch is a typed error naming the
/// offending cell, and the model state is untouched (the batch never
/// reached `partial_fit`).
#[test]
fn reject_policy_fails_fast_and_keeps_model_intact() {
    let dt = 20.0;
    let data = signal(8, 256, dt);
    let mut model = IMrDmd::fit(&data.cols_range(0, 128), &cfg(dt, 3));
    let before = bits(&model.reconstruct());

    let mut guard = IngestGuard::new(GapPolicy::Reject, 8);
    let mut bad = data.cols_range(128, 192);
    bad[(3, 7)] = f64::NAN;
    let err = model.try_partial_fit(&bad, &mut guard).unwrap_err();
    match err {
        CoreError::NonFinite { row, col } => {
            assert_eq!((row, col), (3, 7));
        }
        other => panic!("expected NonFinite, got {other}"),
    }
    assert_eq!(model.n_steps(), 128, "rejected batch was not absorbed");
    assert_eq!(before, bits(&model.reconstruct()), "state untouched");

    // Shape mismatches are typed errors too, not panics.
    let wrong = Mat::zeros(9, 64);
    assert!(matches!(
        model.try_partial_fit(&wrong, &mut guard),
        Err(CoreError::ShapeMismatch {
            expected_rows: 8,
            got_rows: 9
        })
    ));
}

/// The acceptance crash-recovery test: kill a streaming run at an arbitrary
/// chunk boundary, resume from the checkpoint, and the final model
/// reconstructs **bitwise identically** to the uninterrupted run.
#[test]
fn kill_and_resume_from_checkpoint_is_bitwise_identical() {
    let dt = 20.0;
    let total = 512;
    let chunk = 64;
    let data = signal(12, total, dt);
    let c = cfg(dt, 4);

    // Uninterrupted reference run.
    let mut reference = IMrDmd::fit(&data.cols_range(0, 128), &c);
    let mut lo = 128;
    while lo < total {
        reference.partial_fit(&data.cols_range(lo, lo + chunk));
        lo += chunk;
    }

    // Interrupted run: stream to snapshot 384, checkpoint, "crash" (drop
    // the model), restore, and stream the rest.
    let dir = tmp("kill-and-resume");
    let _ = fs::remove_dir_all(&dir);
    let mut ck = Checkpointer::new(&dir, 1).unwrap();
    let mut m = IMrDmd::fit(&data.cols_range(0, 128), &c);
    let mut lo = 128;
    while lo < 384 {
        m.partial_fit(&data.cols_range(lo, lo + chunk));
        ck.tick(&m).unwrap();
        lo += chunk;
    }
    drop(m); // the crash

    let newest = latest_checkpoint(&dir).unwrap().expect("checkpoints exist");
    let mut resumed = load_checkpoint(&newest).unwrap();
    assert_eq!(resumed.n_steps(), 384, "newest checkpoint is the latest");
    let mut lo = resumed.n_steps();
    while lo < total {
        resumed.partial_fit(&data.cols_range(lo, lo + chunk));
        lo += chunk;
    }

    assert_eq!(resumed.n_steps(), reference.n_steps());
    assert_eq!(resumed.n_modes(), reference.n_modes());
    assert_eq!(
        bits(&resumed.reconstruct()),
        bits(&reference.reconstruct()),
        "resumed run reconstructs bitwise identically"
    );
}

/// A checkpoint with a pending sub-window in flight restores that pending
/// buffer too: resuming mid-accumulation loses nothing.
#[test]
fn pending_buffer_survives_checkpoint_roundtrip() {
    let dt = 20.0;
    let data = signal(8, 300, dt);
    let c = cfg(dt, 4);
    let mut m = IMrDmd::fit(&data.cols_range(0, 256), &c);
    m.partial_fit(&data.cols_range(256, 263)); // 7 < min_window: stays pending
    assert_eq!(
        m.pending_len(),
        7,
        "test premise: a pending window in flight"
    );

    let path = tmp("pending.ckpt");
    save_checkpoint(&m, &path).unwrap();
    let restored = load_checkpoint(&path).unwrap();
    assert_eq!(restored.pending_len(), 7);
    assert_eq!(restored.n_steps(), m.n_steps());
    assert_eq!(bits(&restored.reconstruct()), bits(&m.reconstruct()));
}

/// Torn and corrupted checkpoint files are clean typed errors, never a
/// garbage model: truncation (a crash mid-write that somehow skipped the
/// atomic rename), bit flips (disk rot), and header vandalism all reject.
#[test]
fn torn_and_corrupt_checkpoints_are_rejected() {
    let dt = 20.0;
    let data = signal(8, 128, dt);
    let m = IMrDmd::fit(&data, &cfg(dt, 3));
    let path = tmp("corrupt.ckpt");
    save_checkpoint(&m, &path).unwrap();
    let good = fs::read(&path).unwrap();
    assert!(load_checkpoint(&path).is_ok(), "pristine file loads");

    // Truncated at 60%: length check trips before the codec ever runs.
    fs::write(&path, &good[..good.len() * 6 / 10]).unwrap();
    assert!(matches!(
        load_checkpoint(&path),
        Err(CheckpointError::LengthMismatch { .. })
    ));

    // A single flipped bit deep in the payload: checksum catches it.
    let mut flipped = good.clone();
    let at = flipped.len() * 7 / 10;
    flipped[at] ^= 0x10;
    fs::write(&path, &flipped).unwrap();
    assert!(matches!(
        load_checkpoint(&path),
        Err(CheckpointError::ChecksumMismatch { .. })
    ));

    // Wrong magic.
    let mut vandalised = good.clone();
    vandalised[0] = b'X';
    fs::write(&path, &vandalised).unwrap();
    assert!(matches!(
        load_checkpoint(&path),
        Err(CheckpointError::BadHeader(_))
    ));

    // A version from the future is refused, not misparsed.
    let future = String::from_utf8(good.clone())
        .unwrap()
        .replacen(" v1 ", " v9 ", 1);
    fs::write(&path, future).unwrap();
    assert!(matches!(
        load_checkpoint(&path),
        Err(CheckpointError::UnsupportedVersion(9))
    ));

    // And the pristine bytes still load after all that.
    fs::write(&path, &good).unwrap();
    let restored = load_checkpoint(&path).unwrap();
    assert_eq!(bits(&restored.reconstruct()), bits(&m.reconstruct()));
}

/// Regression (pre-PR bug): a chunk size smaller than `min_window` silently
/// dropped every batch's subtree residual — the model degraded to its root
/// ISVD alone. The pending buffer now accumulates small chunks into proper
/// subtree windows.
#[test]
fn tiny_chunks_no_longer_lose_subtree_detail() {
    let dt = 20.0;
    let total = 512;
    let data = signal(12, total, dt);
    let c = cfg(dt, 4);

    let mut tiny = IMrDmd::fit(&data.cols_range(0, 128), &c);
    let mut big = IMrDmd::fit(&data.cols_range(0, 128), &c);
    for lo in (128..total).step_by(8) {
        tiny.partial_fit(&data.cols_range(lo, lo + 8));
    }
    for lo in (128..total).step_by(64) {
        big.partial_fit(&data.cols_range(lo, lo + 64));
    }
    assert_eq!(tiny.n_steps(), total);

    // Pre-PR, the tiny-chunk run had zero post-fit subtree nodes: every
    // 8-column batch fell below min_window (16) and its residual vanished.
    let initial_nodes = IMrDmd::fit(&data.cols_range(0, 128), &c).nodes().count();
    assert!(
        tiny.nodes().count() > initial_nodes,
        "tiny chunks grew subtrees ({} nodes vs {initial_nodes} at fit)",
        tiny.nodes().count()
    );

    // And its accuracy is in the same regime as the big-chunk stream.
    let e_tiny = tiny.reconstruct().fro_dist(&data) / data.fro_norm();
    let e_big = big.reconstruct().fro_dist(&data) / data.fro_norm();
    assert!(
        e_tiny < (3.0 * e_big).max(0.25),
        "tiny-chunk error {e_tiny} vs big-chunk {e_big}"
    );
}

/// Regression (pre-PR bug): a panicked background refit looked exactly like
/// one that was still running — `try_take` returned `None` forever and the
/// monitor waited on a corpse. It is now a typed `RefitDead` error.
#[test]
fn dead_refit_worker_is_an_error_not_a_silent_hang() {
    // One column trips `fit`'s `cols >= 2` assert: the worker panics.
    let refit = AsyncRefit::spawn(Mat::zeros(4, 1), IMrDmdConfig::default());
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
    loop {
        match refit.try_take() {
            Err(CoreError::RefitDead) => break, // the fix: death is visible
            Ok(Some(_)) => panic!("a panicked fit cannot produce a model"),
            Ok(None) => {
                assert!(
                    std::time::Instant::now() < deadline,
                    "pre-PR behaviour: dead worker indistinguishable from a slow one"
                );
                std::thread::yield_now();
            }
            Err(e) => panic!("unexpected error {e}"),
        }
    }
    // The consuming take reports the same fact.
    let refit = AsyncRefit::spawn(Mat::zeros(4, 1), IMrDmdConfig::default());
    assert!(matches!(refit.take(), Err(CoreError::RefitDead)));
}

/// Hold-last repair carries the last finite reading across batch
/// boundaries — the cross-batch state the guard exists for.
#[test]
fn hold_policy_carries_state_across_batches() {
    let dt = 20.0;
    let data = signal(6, 192, dt);
    let c = cfg(dt, 3);
    let mut model = IMrDmd::fit(&data.cols_range(0, 128), &c);
    let mut guard = IngestGuard::new(GapPolicy::HoldLast, 6);

    // Prime the guard's carry with a clean batch…
    let r = model
        .try_partial_fit(&data.cols_range(128, 160), &mut guard)
        .unwrap();
    assert!(r.repairs.is_clean());
    // …then a batch whose row 2 is entirely gaps: held from column 159.
    let mut bad = data.cols_range(160, 192);
    for j in 0..32 {
        bad[(2, j)] = f64::NAN;
    }
    let r = model.try_partial_fit(&bad, &mut guard).unwrap();
    assert_eq!(r.repairs.gaps, 32);
    assert_eq!(r.repairs.repaired, 32);
    assert!(r.repairs.unseeded_rows.is_empty(), "carry was available");
    let rec = model.reconstruct();
    assert!(rec.as_slice().iter().all(|v| v.is_finite()));
}

/// Regression for the concurrent-checkpoint collision: multiple threads
/// saving into the same directory — even to the **same final path** — must
/// never tear each other's writes. The pre-fix code derived one shared
/// `.tmp` sibling from the final path, so two concurrent saves raced on the
/// temp file and one rename could ship a half-written payload; temp names
/// are now unique per (process, save). Every save must succeed and the
/// file must parse as a complete checkpoint at all times.
#[test]
fn concurrent_checkpoint_saves_to_one_path_never_collide() {
    let dt = 20.0;
    let data = signal(5, 160, dt);
    let model = IMrDmd::fit(&data, &cfg(dt, 3));
    let path = tmp("concurrent-one-path.ckpt");
    let _ = fs::remove_file(&path);

    let workers: Vec<_> = (0..8)
        .map(|_| {
            let model = model.clone();
            let path = path.clone();
            std::thread::spawn(move || {
                for _ in 0..12 {
                    save_checkpoint(&model, &path).expect("save must never fail under contention");
                }
            })
        })
        .collect();
    // Reader races the writers: any visible file state must be a complete,
    // CRC-valid checkpoint (rename is atomic; temp files are private).
    let mut observed = 0usize;
    while workers.iter().any(|w| !w.is_finished()) {
        if path.exists() {
            let restored = load_checkpoint(&path).expect("visible checkpoint must be whole");
            assert_eq!(restored.n_steps(), model.n_steps());
            observed += 1;
        }
    }
    for w in workers {
        w.join().unwrap();
    }
    assert!(observed > 0, "reader must actually race the writers");
    let restored = load_checkpoint(&path).unwrap();
    assert_eq!(bits(&restored.reconstruct()), bits(&model.reconstruct()));
    // No temp litter left behind.
    let dir = path.parent().unwrap();
    let litter: Vec<_> = fs::read_dir(dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .filter(|n| n.starts_with("concurrent-one-path") && n.ends_with(".tmp"))
        .collect();
    assert!(litter.is_empty(), "temp files leaked: {litter:?}");
}

/// Shard-namespaced checkpointers sharing one `--checkpoint-dir`: each
/// tenant's files live under its own `ckpt-<shard>-<steps>` namespace, so
/// concurrent fleets neither collide nor cross-restore, and the legacy
/// unsharded scan does not pick shard files up.
#[test]
fn sharded_checkpointers_share_a_directory_without_crosstalk() {
    let dt = 20.0;
    let dir = tmp("sharded-dir");
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();

    let workers: Vec<_> = (0..6)
        .map(|k| {
            let dir = dir.clone();
            std::thread::spawn(move || {
                // Distinct per-shard signal so cross-restores would be caught.
                let data = signal(4 + k, 128, dt);
                let model = IMrDmd::fit(&data, &cfg(dt, 3));
                let mut ck = Checkpointer::for_shard(&dir, 1, &format!("shard-{k}")).unwrap();
                ck.tick(&model).unwrap();
                model
            })
        })
        .collect();
    let models: Vec<IMrDmd> = workers.into_iter().map(|w| w.join().unwrap()).collect();

    let found = shard_checkpoints(&dir).unwrap();
    assert_eq!(found.len(), 6);
    for (k, model) in models.iter().enumerate() {
        let shard = format!("shard-{k}");
        let path = latest_checkpoint_for_shard(&dir, &shard)
            .unwrap()
            .unwrap_or_else(|| panic!("missing checkpoint for {shard}"));
        let restored = load_checkpoint(&path).unwrap();
        assert_eq!(
            bits(&restored.reconstruct()),
            bits(&model.reconstruct()),
            "{shard} restored someone else's state"
        );
    }
    // Shard names may themselves contain dashes; the steps suffix still
    // parses. And the unsharded legacy scan ignores all shard files.
    assert!(is_valid_shard_name("rack-a-12"));
    assert_eq!(latest_checkpoint(&dir).unwrap(), None);
}
