//! Bitwise determinism of the parallel tree fit (ISSUE PR 1, satellite 2).
//!
//! The worker pool promises that the `n_threads` knob changes *wall-clock
//! time only*: every tree, spectrum, and reconstruction must be
//! bit-for-bit identical at any thread count. These proptests pin that
//! contract for n_threads ∈ {2, 4, 8} against the n_threads = 1 serial
//! reference, with problem sizes chosen so `rows × half_window` crosses
//! the `PAR_TREE_MIN_ELEMS` fork cutoff (32,768 elements) and the pool
//! really forks.

use mrdmd_suite::prelude::*;
use proptest::prelude::*;

/// Thread counts compared against the serial (n_threads = 1) reference.
const THREAD_COUNTS: [usize; 3] = [2, 4, 8];

/// Flattens a real matrix to its exact bit pattern.
fn mat_bits(m: &Mat) -> Vec<u64> {
    let mut bits = vec![m.rows() as u64, m.cols() as u64];
    bits.extend(m.as_slice().iter().map(|v| v.to_bits()));
    bits
}

/// Flattens a complex slice to its exact bit pattern.
fn c64_bits(out: &mut Vec<u64>, zs: &[c64]) {
    out.push(zs.len() as u64);
    for z in zs {
        out.push(z.re.to_bits());
        out.push(z.im.to_bits());
    }
}

/// Flattens a whole tree — structure and numerics — to its bit pattern.
fn tree_bits<'a>(nodes: impl IntoIterator<Item = &'a ModeSet>) -> Vec<u64> {
    let mut bits = Vec::new();
    for n in nodes {
        bits.extend([
            n.level as u64,
            n.start as u64,
            n.window as u64,
            n.step as u64,
            n.row_offset as u64,
            n.modes.rows() as u64,
            n.modes.cols() as u64,
        ]);
        c64_bits(&mut bits, n.modes.as_slice());
        c64_bits(&mut bits, &n.lambdas);
        c64_bits(&mut bits, &n.omegas);
        c64_bits(&mut bits, &n.amplitudes);
    }
    bits
}

/// Flattens a spectrum to its bit pattern.
fn spectrum_bits(pts: &[SpectrumPoint]) -> Vec<u64> {
    let mut bits = Vec::new();
    for p in pts {
        bits.extend([
            p.frequency_hz.to_bits(),
            p.power.to_bits(),
            p.growth.to_bits(),
            p.level as u64,
            p.window_start as u64,
            p.window_len as u64,
        ]);
    }
    bits
}

/// A scenario big enough that the level-1 split (`rows × total/2`) clears
/// the fork cutoff.
fn forking_scenario(n_nodes: usize, total: usize, seed: u64) -> Scenario {
    let mut machine = theta().scaled(n_nodes);
    machine.series_per_node = 1;
    Scenario::sc_log(machine, total, seed)
}

fn mr_config(scenario: &Scenario, levels: usize, n_threads: usize) -> MrDmdConfig {
    MrDmdConfig {
        dt: scenario.dt(),
        max_levels: levels,
        max_cycles: 2,
        rank: RankSelection::Svht,
        n_threads,
        ..MrDmdConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 3, ..ProptestConfig::default() })]

    /// Batch `MrDmd::fit` produces the same tree, spectrum, and
    /// reconstructions bit-for-bit at every thread count.
    #[test]
    fn batch_fit_is_bitwise_identical_across_thread_counts(
        n_nodes in 44usize..52,
        total in 1500usize..1700,
        seed in 0u64..1000,
    ) {
        let scenario = forking_scenario(n_nodes, total, seed);
        let data = scenario.generate(0, total);
        let serial = MrDmd::fit(&data, &mr_config(&scenario, 4, 1));
        let ref_tree = tree_bits(serial.nodes.iter());
        let ref_rec = mat_bits(&serial.reconstruct());
        let ref_slice = mat_bits(&serial.reconstruct_range(total / 3, 2 * total / 3));
        let ref_spec = spectrum_bits(&mode_spectrum(serial.nodes.iter()));
        for k in THREAD_COUNTS {
            let par = MrDmd::fit(&data, &mr_config(&scenario, 4, k));
            prop_assert_eq!(serial.nodes.len(), par.nodes.len());
            prop_assert!(
                tree_bits(par.nodes.iter()) == ref_tree,
                "tree bits differ at n_threads={}", k
            );
            prop_assert!(
                mat_bits(&par.reconstruct()) == ref_rec,
                "reconstruction bits differ at n_threads={}", k
            );
            prop_assert!(
                mat_bits(&par.reconstruct_range(total / 3, 2 * total / 3)) == ref_slice,
                "range-reconstruction bits differ at n_threads={}", k
            );
            prop_assert!(
                spectrum_bits(&mode_spectrum(par.nodes.iter())) == ref_spec,
                "spectrum bits differ at n_threads={}", k
            );
        }
    }

    /// The incremental paths — initial fit, partial fit, and the stale
    /// subtree refresh — are bitwise-identical at every thread count.
    #[test]
    fn incremental_paths_are_bitwise_identical_across_thread_counts(
        n_nodes in 44usize..52,
        seed in 0u64..1000,
    ) {
        let total = 1600;
        let t0 = 1100;
        let scenario = forking_scenario(n_nodes, total, seed);
        let initial = scenario.generate(0, t0);
        let batch = scenario.generate(t0, total);
        let run = |n_threads: usize| {
            let cfg = IMrDmdConfig {
                mr: mr_config(&scenario, 4, n_threads),
                keep_history: true,
                ..IMrDmdConfig::default()
            };
            let mut model = IMrDmd::fit(&initial, &cfg);
            let after_fit = tree_bits(model.nodes());
            model.partial_fit(&batch);
            let after_partial = tree_bits(model.nodes());
            model.refresh_subtrees();
            let after_refresh = tree_bits(model.nodes());
            let rec = mat_bits(&model.reconstruct_range(t0 / 2, total));
            (after_fit, after_partial, after_refresh, rec)
        };
        let reference = run(1);
        for k in THREAD_COUNTS {
            let got = run(k);
            prop_assert!(got.0 == reference.0, "initial-fit tree differs at n_threads={}", k);
            prop_assert!(got.1 == reference.1, "partial-fit tree differs at n_threads={}", k);
            prop_assert!(got.2 == reference.2, "refreshed tree differs at n_threads={}", k);
            prop_assert!(got.3 == reference.3, "reconstruction differs at n_threads={}", k);
        }
    }

    /// The windowed comparator fits its due windows on the pool; stitched
    /// reconstructions must not depend on the thread count.
    #[test]
    fn windowed_fit_is_bitwise_identical_across_thread_counts(
        n_nodes in 8usize..16,
        seed in 0u64..1000,
    ) {
        let total = 1024;
        let scenario = forking_scenario(n_nodes, total, seed);
        let data = scenario.generate(0, total);
        let run = |n_threads: usize| {
            let cfg = WindowedConfig {
                mr: mr_config(&scenario, 3, n_threads),
                window: 256,
                overlap: 64,
            };
            let model = WindowedMrDmd::fit(&data, &cfg);
            mat_bits(&model.reconstruct())
        };
        let reference = run(1);
        for k in THREAD_COUNTS {
            prop_assert!(run(k) == reference, "windowed reconstruction differs at n_threads={}", k);
        }
    }
}

/// `add_series` fits the appended sensors' subtree through the same pool;
/// the resulting model must match the serial one bit-for-bit.
#[test]
fn add_series_is_bitwise_identical_across_thread_counts() {
    let total = 1400;
    let scenario = forking_scenario(48, total, 7);
    let data = scenario.generate(0, total);
    let extra = forking_scenario(48, total, 8).generate(0, total);
    let run = |n_threads: usize| {
        let cfg = IMrDmdConfig {
            mr: mr_config(&scenario, 4, n_threads),
            ..IMrDmdConfig::default()
        };
        let mut model = IMrDmd::fit(&data, &cfg);
        model.add_series(&extra);
        (tree_bits(model.nodes()), mat_bits(&model.reconstruct()))
    };
    let reference = run(1);
    for k in THREAD_COUNTS {
        assert!(run(k) == reference, "add_series differs at n_threads={k}");
    }
}
