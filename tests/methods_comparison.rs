//! Integration tests for the comparator suite on real(istic) telemetry —
//! the Fig. 8 contract: every method embeds the same data, the embeddings
//! are finite and deterministic, and the mrDMD-family embedding separates
//! baseline from non-baseline readings.

use mrdmd_suite::prelude::*;

/// Two labelled populations of telemetry series: 12 idle + 12 job-heated.
fn labelled_telemetry() -> (Mat, usize) {
    let n_nodes = 24;
    let total = 400;
    let mut machine = theta().scaled(n_nodes);
    machine.series_per_node = 1;
    // One hot job covering the second half of the nodes for the whole run.
    let jobs = JobLog::new(
        vec![Job {
            id: 0,
            project: "hot".into(),
            first_node: 12,
            n_nodes: 12,
            start_step: 20,
            end_step: total,
            intensity: 18.0,
            period_s: 240.0,
        }],
        n_nodes,
    );
    let scenario = Scenario::new(machine, Profile::ScLog, 9, jobs, vec![]);
    (scenario.generate(0, total), 12)
}

fn centroid_gap(e: &Mat, n_base: usize) -> f64 {
    let c = |lo: usize, hi: usize| -> (f64, f64) {
        let n = (hi - lo) as f64;
        (
            (lo..hi).map(|i| e[(i, 0)]).sum::<f64>() / n,
            (lo..hi).map(|i| e[(i, 1)]).sum::<f64>() / n,
        )
    };
    let a = c(0, n_base);
    let b = c(n_base, e.rows());
    ((a.0 - b.0).powi(2) + (a.1 - b.1).powi(2)).sqrt()
}

#[test]
fn all_methods_embed_telemetry_finitely() {
    let (x, _) = labelled_telemetry();

    let mut pca = Pca::new(2);
    pca.fit(&x);
    assert!(pca.embedding().as_slice().iter().all(|v| v.is_finite()));

    let mut ipca = IncrementalPca::new(2);
    ipca.fit(&x, 8);
    assert!(ipca.transform(&x).as_slice().iter().all(|v| v.is_finite()));

    let u = Umap::fit(
        &x,
        &UmapConfig {
            n_neighbors: 6,
            n_epochs: 40,
            ..Default::default()
        },
    );
    assert!(u.embedding().as_slice().iter().all(|v| v.is_finite()));

    let t = Tsne::fit(
        &x,
        &TsneConfig {
            perplexity: 6.0,
            n_iter: 60,
            ..Default::default()
        },
    );
    assert!(t.embedding().as_slice().iter().all(|v| v.is_finite()));

    let mut au = AlignedUmap::new(UmapConfig {
        n_neighbors: 6,
        n_epochs: 40,
        ..Default::default()
    });
    au.fit(&x.cols_range(0, 200));
    au.partial_fit(&x);
    assert!(au
        .embedding()
        .unwrap()
        .as_slice()
        .iter()
        .all(|v| v.is_finite()));
}

#[test]
fn mrdmd_embedding_separates_populations() {
    let (x, n_base) = labelled_telemetry();
    let cfg = MrDmdConfig {
        dt: 20.0,
        max_levels: 4,
        max_cycles: 2,
        rank: RankSelection::Svht,
        ..MrDmdConfig::default()
    };
    let m = MrDmd::fit(&x, &cfg);
    let e = embedding_2d(&m.nodes, &BandFilter::all(), x.rows());
    assert_eq!(e.shape(), (x.rows(), 2));
    let gap = centroid_gap(&e, n_base);
    assert!(gap > 0.0, "populations should not coincide (gap {gap})");
    // The idle population clusters tightly: its within-spread is below the
    // centroid gap.
    let ca = (
        (0..n_base).map(|i| e[(i, 0)]).sum::<f64>() / n_base as f64,
        (0..n_base).map(|i| e[(i, 1)]).sum::<f64>() / n_base as f64,
    );
    let spread_a = (0..n_base)
        .map(|i| ((e[(i, 0)] - ca.0).powi(2) + (e[(i, 1)] - ca.1).powi(2)).sqrt())
        .sum::<f64>()
        / n_base as f64;
    assert!(gap > spread_a, "gap {gap} vs idle spread {spread_a}");
}

#[test]
fn imrdmd_embedding_matches_batch_family() {
    let (x, n_base) = labelled_telemetry();
    let mr = MrDmdConfig {
        dt: 20.0,
        max_levels: 4,
        max_cycles: 2,
        rank: RankSelection::Svht,
        ..MrDmdConfig::default()
    };
    let icfg = IMrDmdConfig {
        mr,
        ..IMrDmdConfig::default()
    };
    let mut inc = IMrDmd::fit(&x.cols_range(0, 200), &icfg);
    inc.partial_fit(&x.cols_range(200, 400));
    let e = embedding_2d(inc.nodes(), &BandFilter::all(), x.rows());
    assert!(e.as_slice().iter().all(|v| v.is_finite()));
    assert!(centroid_gap(&e, n_base) > 0.0);
}

#[test]
fn pca_and_ipca_agree_on_telemetry() {
    let (x, _) = labelled_telemetry();
    let mut pca = Pca::new(2);
    pca.fit(&x);
    let mut ipca = IncrementalPca::new(2);
    ipca.fit(&x, 10);
    let cross = ipca.components().t_matmul(pca.components());
    let s = mrdmd_suite::linalg::svd(&cross);
    for &v in &s.s {
        assert!(v > 0.9, "principal subspaces diverge: cosine {v}");
    }
}
