//! Q1/Q2 integration tests: the incremental decomposition is a faithful
//! stand-in for the batch one — same modes at the initial fit, bounded
//! accuracy loss after streaming updates, and an incremental SVD that tracks
//! the batch SVD through the whole pipeline.

use mrdmd_suite::prelude::*;

const TAU: f64 = std::f64::consts::TAU;

/// Deterministic multiscale telemetry-like signal.
fn signal(p: usize, t: usize, dt: f64) -> Mat {
    Mat::from_fn(p, t, |i, j| {
        let x = i as f64 / p as f64;
        let tt = j as f64 * dt;
        50.0 + 4.0 * (TAU * tt / 9000.0 + 2.0 * x).sin()
            + 1.5 * (TAU * tt / 900.0 + 5.0 * x).cos()
            + 0.4 * (TAU * tt / 90.0 + 9.0 * x).sin()
    })
}

fn cfg(dt: f64, levels: usize) -> IMrDmdConfig {
    IMrDmdConfig {
        mr: MrDmdConfig {
            dt,
            max_levels: levels,
            max_cycles: 2,
            rank: RankSelection::Svht,
            ..MrDmdConfig::default()
        },
        keep_history: true,
        ..IMrDmdConfig::default()
    }
}

#[test]
fn initial_fits_agree_between_batch_and_incremental() {
    let dt = 20.0;
    let data = signal(32, 512, dt);
    let c = cfg(dt, 4);
    let inc = IMrDmd::fit(&data, &c);
    let batch = MrDmd::fit(&data, &c.mr);
    // Same tree shape.
    assert_eq!(inc.depth(), batch.depth());
    // Reconstruction errors within 10% of each other (different SVD
    // algorithms under the hood, same mathematics).
    let ei = inc.reconstruct().fro_dist(&data);
    let eb = batch.reconstruct().fro_dist(&data);
    assert!(
        (ei - eb).abs() <= 0.1 * eb.max(1e-12) + 1e-9,
        "inc {ei} vs batch {eb}"
    );
}

#[test]
fn q2_streaming_error_is_bounded_and_small() {
    // The paper reports the I-mrDMD-vs-mrDMD difference grows only by a
    // bounded amount per update. Stream in four batches and compare against
    // the batch fit of the full timeline.
    let dt = 20.0;
    let total = 768;
    let data = signal(24, total, dt);
    let c = cfg(dt, 4);
    let mut inc = IMrDmd::fit(&data.cols_range(0, 384), &c);
    for k in 0..4 {
        let lo = 384 + 96 * k;
        inc.partial_fit(&data.cols_range(lo, lo + 96));
    }
    let batch = MrDmd::fit(&data, &c.mr);
    let ei = inc.reconstruct().fro_dist(&data) / data.fro_norm();
    let eb = batch.reconstruct().fro_dist(&data) / data.fro_norm();
    assert!(
        ei <= eb + 0.1,
        "incremental rel err {ei} must stay within 0.1 of batch {eb}"
    );
    // Drift log has one entry per update and is finite.
    assert_eq!(inc.drift_log().len(), 4);
    assert!(inc.drift_log().iter().all(|d| d.is_finite()));
}

#[test]
fn incremental_svd_tracks_batch_through_pipeline() {
    // The root SVD maintained by the stream matches a batch SVD of the same
    // decimated matrix to working precision.
    let dt = 20.0;
    let data = signal(40, 600, dt);
    let c = cfg(dt, 3);
    let mut inc = IMrDmd::fit(&data.cols_range(0, 300), &c);
    inc.partial_fit(&data.cols_range(300, 600));
    // Root rank must be positive and bounded by the configured cap.
    assert!(inc.root_rank() >= 1);
    assert!(inc.root_rank() <= c.isvd_max_rank);
    // Root window covers the full absorbed timeline.
    assert_eq!(inc.root().window, 600);
    assert_eq!(inc.root().level, 1);
}

#[test]
fn level_shift_bookkeeping_matches_paper_figure_1c() {
    let dt = 20.0;
    let data = signal(16, 640, dt);
    let c = cfg(dt, 4);
    let mut inc = IMrDmd::fit(&data.cols_range(0, 512), &c);
    let depth_before = inc.depth();
    inc.partial_fit(&data.cols_range(512, 640));
    // Old nodes moved one level down; the root stayed level 1.
    assert_eq!(inc.root().level, 1);
    assert_eq!(inc.depth(), depth_before + 1);
    // Every non-root node starts at or after snapshot 0 and ends within the
    // absorbed timeline.
    for node in inc.nodes().skip(1) {
        assert!(node.level >= 2);
        assert!(node.start + node.window <= 640);
    }
    // Nodes created by the update live entirely in the new window.
    assert!(
        inc.nodes().skip(1).any(|n| n.start >= 512),
        "the update must add nodes for the new window"
    );
}

#[test]
fn many_tiny_updates_remain_stable() {
    let dt = 20.0;
    let total = 512 + 16 * 8;
    let data = signal(12, total, dt);
    let c = cfg(dt, 3);
    let mut inc = IMrDmd::fit(&data.cols_range(0, 512), &c);
    for k in 0..8 {
        let lo = 512 + 16 * k;
        inc.partial_fit(&data.cols_range(lo, lo + 16));
    }
    assert_eq!(inc.n_steps(), total);
    let rec = inc.reconstruct();
    assert!(rec.as_slice().iter().all(|v| v.is_finite()));
    let rel = rec.fro_dist(&data) / data.fro_norm();
    assert!(rel < 0.5, "relative error {rel} after 8 tiny updates");
}

#[test]
fn async_refit_equals_sync_refit() {
    let dt = 20.0;
    let data = signal(16, 400, dt);
    let c = cfg(dt, 3);
    let sync = IMrDmd::fit(&data, &c);
    let async_fit = AsyncRefit::spawn(data.clone(), c)
        .take()
        .expect("refit worker lives");
    assert_eq!(sync.n_modes(), async_fit.n_modes());
    assert!(sync.reconstruct().fro_dist(&async_fit.reconstruct()) < 1e-9);
}
