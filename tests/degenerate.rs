//! Degenerate-input regression tests (ISSUE PR 1, satellite 4): edge cases
//! on the streaming API that are easy to break while refactoring the hot
//! paths — empty `add_series` batches, zero-length forecasts, streaming
//! after a sensor addition, and polling an async refit before it lands.

use mrdmd_suite::prelude::*;

fn scenario(n_nodes: usize, total: usize, seed: u64) -> Scenario {
    let mut machine = theta().scaled(n_nodes);
    machine.series_per_node = 1;
    Scenario::sc_log(machine, total, seed)
}

fn cfg(sc: &Scenario, levels: usize) -> IMrDmdConfig {
    IMrDmdConfig {
        mr: MrDmdConfig {
            dt: sc.dt(),
            max_levels: levels,
            max_cycles: 2,
            rank: RankSelection::Svht,
            ..MrDmdConfig::default()
        },
        ..IMrDmdConfig::default()
    }
}

fn bits(m: &Mat) -> Vec<u64> {
    m.as_slice().iter().map(|v| v.to_bits()).collect()
}

/// Adding a 0-row batch of sensors is a no-op: same tree, same output.
#[test]
fn add_series_with_zero_rows_is_a_noop() {
    let total = 256;
    let sc = scenario(12, total, 3);
    let data = sc.generate(0, total);
    let mut model = IMrDmd::fit(&data, &cfg(&sc, 3));
    let n_modes = model.n_modes();
    let node_count = model.nodes().count();
    let rec = bits(&model.reconstruct());
    model.add_series(&Mat::zeros(0, total));
    assert_eq!(model.n_modes(), n_modes, "mode count unchanged");
    assert_eq!(model.nodes().count(), node_count, "node count unchanged");
    assert_eq!(bits(&model.reconstruct()), rec, "reconstruction unchanged");
}

/// A zero-length forecast is an empty matrix, not a panic.
#[test]
fn forecast_with_zero_horizon_is_empty() {
    let total = 256;
    let sc = scenario(10, total, 5);
    let model = IMrDmd::fit(&sc.generate(0, total), &cfg(&sc, 3));
    let f = model.forecast(0);
    assert_eq!((f.rows(), f.cols()), (10, 0));
    // And the first non-degenerate horizon stays finite.
    let f = model.forecast(1);
    assert_eq!((f.rows(), f.cols()), (10, 1));
    assert!(f.as_slice().iter().all(|v| v.is_finite()));
}

/// The stream keeps absorbing snapshots after new sensors are added: the
/// batch now carries rows for both the original and the appended series.
#[test]
fn partial_fit_after_add_series_absorbs_the_wider_stream() {
    let total = 384;
    let t0 = 256;
    let sc = scenario(8, total, 11);
    let extra_sc = scenario(4, total, 12);
    let mut model = IMrDmd::fit(&sc.generate(0, t0), &cfg(&sc, 3));
    model.add_series(&extra_sc.generate(0, t0));

    // Widened batch: original rows stacked over the appended sensors' rows.
    let batch = sc.generate(t0, total).vstack(&extra_sc.generate(t0, total));
    assert_eq!(batch.rows(), 12);
    let report = model.partial_fit(&batch);
    assert_eq!(report.batch_len, total - t0);
    assert_eq!(model.n_steps(), total);
    assert_eq!(model.root().window, total);
    let rec = model.reconstruct();
    assert_eq!((rec.rows(), rec.cols()), (12, total));
    assert!(rec.as_slice().iter().all(|v| v.is_finite()));
    // The appended sensors' dedicated subtree survives the update.
    assert!(
        model.nodes().any(|n| n.row_offset == 8),
        "appended-row subtree retained"
    );
}

/// Polling an async refit before the worker finishes yields `None` (and
/// doesn't consume the result); the blocking take still lands the model.
#[test]
fn async_refit_try_take_before_completion_is_none() {
    let total = 2048;
    let sc = scenario(48, total, 21);
    let data = sc.generate(0, total);
    let refit = AsyncRefit::spawn(data.clone(), cfg(&sc, 4));
    // A 48 × 2048, 4-level fit takes milliseconds at best; the worker
    // cannot have finished by the very next instruction.
    assert!(
        matches!(refit.try_take(), Ok(None)),
        "try_take returned a model before the refit could have finished"
    );
    let model = refit.take().expect("refit worker lives");
    assert_eq!(model.n_steps(), total);
    let direct = IMrDmd::fit(&data, &cfg(&sc, 4));
    assert_eq!(
        model.n_modes(),
        direct.n_modes(),
        "refit equals a direct fit"
    );
}
