//! Engine determinism suite (ISSUE PR 7, satellite 4).
//!
//! The batched execution engine promises that *how* a fleet round is
//! executed — how many shards the fleet is split into, how many worker
//! threads the kernel batches dispatch over, and in what order jobs are
//! submitted within a wave — changes wall-clock time only. Every tree's
//! serialized state must be bit-for-bit identical to the legacy
//! one-tree-at-a-time `try_partial_fit` reference, and the per-round
//! ok/err pattern must match too. The streams are corrupted by the
//! telemetry [`FaultInjector`] (NaN runs, dropped samples, dead sensors,
//! rank-collapsing pathological batches) so the invariance holds on the
//! degraded paths, not just the happy path.

use mrdmd_suite::prelude::*;

/// Trees in the fleet — sized so shard counts {1, 8, 64} all divide it.
const TREES: usize = 64;
/// Sensors per tree.
const ROWS: usize = 6;
/// Snapshots in each tree's initial fit.
const FIT_COLS: usize = 32;
/// Snapshots per batch per round.
const BATCH_COLS: usize = 3;
/// Streaming rounds per configuration.
const ROUNDS: usize = 6;

fn signal(tree: usize, t0: usize, cols: usize) -> Mat {
    Mat::from_fn(ROWS, cols, |i, j| {
        let t = (t0 + j) as f64 * 0.6;
        (0.04 * t + tree as f64 * 0.31).sin() * ((i + 1) as f64 * 0.5).cos()
            + 0.25 * (0.8 * t + i as f64 * 0.9).sin()
    })
}

fn cfg() -> IMrDmdConfig {
    IMrDmdConfig {
        mr: MrDmdConfig {
            max_levels: 2,
            max_cycles: 2,
            rank: RankSelection::Fixed(4),
            min_window: 8,
            n_threads: 1,
            ..MrDmdConfig::default()
        },
        isvd_max_rank: 6,
        drift_threshold: None,
        keep_history: false,
        auto_refresh: false,
    }
}

/// Each tree's batches, run through the fault injector: the same corrupted
/// stream (ground truth fixed per seed) feeds every execution strategy.
/// Returns the batches and how many pathological/NaN-bearing injections
/// landed, so the test can assert it exercised the degraded paths.
fn corrupted_batches(tree: usize) -> (Vec<Mat>, usize) {
    let clean: Vec<Mat> = (0..ROUNDS)
        .map(|r| signal(tree, FIT_COLS + r * BATCH_COLS, BATCH_COLS))
        .collect();
    let fc = FaultConfig {
        seed: 9000 + tree as u64,
        drop_prob: 0.02,
        nan_run_prob: 0.4,
        nan_run_max_len: 2,
        sensor_dropout_prob: 0.2,
        duplicate_prob: 0.0,
        pathological_prob: 0.35,
    };
    let mut inj = FaultInjector::new(clean.into_iter(), fc);
    let batches: Vec<Mat> = (&mut inj).collect();
    (batches, inj.events().len())
}

/// A deterministic permutation of `0..n` (stride walk; `n` here is always a
/// power of two, so any odd stride is coprime) — shuffled job submission
/// order without depending on an RNG.
fn permuted(n: usize, seed: usize) -> Vec<usize> {
    let stride = [1usize, 7, 13, 29, 37][seed % 5];
    (0..n).map(|k| (k * stride + seed) % n).collect()
}

fn state_json(tree: &IMrDmd) -> String {
    serde_json::to_string(tree).expect("serialize tree")
}

#[test]
#[allow(clippy::needless_range_loop)] // rounds index a per-tree × per-round grid
fn engine_state_is_invariant_to_sharding_threads_and_order() {
    let c = cfg();
    let init: Vec<IMrDmd> = (0..TREES)
        .map(|k| IMrDmd::fit(&signal(k, 0, FIT_COLS), &c))
        .collect();
    let mut injected = 0usize;
    let batches: Vec<Vec<Mat>> = (0..TREES)
        .map(|k| {
            let (b, events) = corrupted_batches(k);
            injected += events;
            assert_eq!(b.len(), ROUNDS);
            b
        })
        .collect();
    assert!(
        injected > TREES,
        "test premise: the injector corrupted the streams ({injected} events)"
    );

    // Legacy reference: guarded per-tree rounds, sequential, in tree order.
    let mut reference = init.clone();
    let mut ref_guards: Vec<IngestGuard> = (0..TREES)
        .map(|_| IngestGuard::new(GapPolicy::HoldLast, ROWS))
        .collect();
    let mut ref_ok = vec![Vec::new(); TREES];
    for r in 0..ROUNDS {
        for k in 0..TREES {
            let res = reference[k].try_partial_fit(&batches[k][r], &mut ref_guards[k]);
            ref_ok[k].push(res.is_ok());
        }
    }
    let want: Vec<String> = reference.iter().map(state_json).collect();

    for shards in [1usize, 8, 64] {
        for threads in [1usize, 2, 4] {
            let mut fleet = init.clone();
            let mut guards: Vec<IngestGuard> = (0..TREES)
                .map(|_| IngestGuard::new(GapPolicy::HoldLast, ROWS))
                .collect();
            let mut engine = Engine::with_threads(threads);
            let mut got_ok = vec![Vec::new(); TREES];
            let group = TREES / shards;
            for r in 0..ROUNDS {
                for (s, (trees, gs)) in fleet
                    .chunks_mut(group)
                    .zip(guards.chunks_mut(group))
                    .enumerate()
                {
                    // Shuffle submission order within the wave; the schedule
                    // varies with round, shard, and configuration.
                    let order = permuted(trees.len(), r * 31 + s * 7 + shards + threads);
                    let mut slots: Vec<Option<(&mut IMrDmd, &mut IngestGuard)>> =
                        trees.iter_mut().zip(gs.iter_mut()).map(Some).collect();
                    let mut jobs: Vec<FleetJob<'_>> = Vec::with_capacity(order.len());
                    let mut job_tree: Vec<usize> = Vec::with_capacity(order.len());
                    for &i in &order {
                        let (tree, guard) = slots[i].take().expect("permutation is a bijection");
                        job_tree.push(s * group + i);
                        jobs.push(FleetJob {
                            tree,
                            batch: &batches[s * group + i][r],
                            guard: Some(guard),
                        });
                    }
                    let results = engine.run_fleet(&mut jobs);
                    drop(jobs);
                    for (j, res) in results.iter().enumerate() {
                        got_ok[job_tree[j]].push(res.is_ok());
                    }
                }
            }
            for k in 0..TREES {
                assert_eq!(
                    got_ok[k], ref_ok[k],
                    "round outcomes diverged: shards={shards} threads={threads} tree={k}"
                );
                assert_eq!(
                    state_json(&fleet[k]),
                    want[k],
                    "state diverged: shards={shards} threads={threads} tree={k}"
                );
            }
        }
    }
}
