//! Crash-point chaos matrix for the durable ingest path.
//!
//! Each cell of the matrix constructs, with the real `Checkpointer`/`Wal`
//! APIs, the exact disk state a process crash would leave at one point of
//! the ingest protocol — before the WAL append, after the append but
//! before the ack, after the ack but before the next checkpoint, or mid
//! checkpoint write — optionally with a torn final WAL frame on top.
//! Recovery (`Shard::recover`) plus the client's at-least-once resend
//! must then land the shard in a state **bitwise identical** (string
//! equality on serde JSON) to an in-process oracle that streamed the same
//! batches without ever crashing.

use std::path::{Path, PathBuf};

use imrdmd_serve::{ManagerConfig, Shard, ShardManager, ShardState};
use mrdmd_suite::prelude::*;
use proptest::prelude::*;

const TENANT: &str = "t00";

fn scratch_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("imrdmd-wal-chaos").join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn cfg(dt: f64, n_threads: usize, strategy: FitStrategy) -> IMrDmdConfig {
    IMrDmdConfig {
        mr: MrDmdConfig {
            dt,
            max_levels: 3,
            max_cycles: 2,
            rank: RankSelection::Svht,
            n_threads,
            strategy,
            ..MrDmdConfig::default()
        },
        ..IMrDmdConfig::default()
    }
}

/// Deterministic gappy batches: scenario chunks with NaN runs poked into
/// every batch after the first, so recovery exercises the repair path.
fn gappy_batches(seed: u64, total: usize, chunk: usize) -> (f64, Vec<Mat>) {
    let mut machine = theta().scaled(4);
    machine.series_per_node = 1;
    let sc = Scenario::sc_log(machine, total, seed);
    let mut out = Vec::new();
    let mut t = 0;
    while t < total {
        let hi = (t + chunk).min(total);
        let mut b = sc.generate(t, hi);
        if t > 0 {
            let row = (seed as usize + t) % b.rows();
            for j in (b.cols() / 3)..(b.cols() / 3 + 3).min(b.cols()) {
                b[(row, j)] = f64::NAN;
            }
        }
        out.push(b);
        t = hi;
    }
    (sc.dt(), out)
}

/// The never-crashed reference: the same cold-start + `try_partial_fit`
/// pipeline the shard runs, with no WAL or checkpoints in the way.
fn oracle(batches: &[Mat], upto: usize, cfg: &IMrDmdConfig, policy: GapPolicy) -> IMrDmd {
    let mut model: Option<IMrDmd> = None;
    let mut guard: Option<IngestGuard> = None;
    for b in &batches[..upto] {
        match &mut model {
            None => {
                let mut g = IngestGuard::new(policy, b.rows());
                let (clean, _) = g.repair(b).unwrap();
                model = Some(IMrDmd::fit(clean.as_ref().unwrap_or(b), cfg));
                guard = Some(g);
            }
            Some(m) => {
                m.try_partial_fit(b, guard.as_mut().unwrap()).unwrap();
            }
        }
    }
    model.unwrap()
}

/// The repaired form of `batches[k]` as the live pipeline would log it:
/// replay the guard through the first `k` batches, then repair batch `k`.
fn repaired(batches: &[Mat], k: usize, policy: GapPolicy) -> Mat {
    let mut g = IngestGuard::new(policy, batches[0].rows());
    for b in &batches[..k] {
        g.repair(b).unwrap();
    }
    let (clean, _) = g.repair(&batches[k]).unwrap();
    clean.unwrap_or_else(|| batches[k].clone())
}

fn model_json(shard: &Shard) -> String {
    shard
        .with_model(|m| serde_json::to_string(m).unwrap())
        .unwrap()
}

fn ck(dir: &Path, every: usize, keep: usize) -> Option<Checkpointer> {
    Some(
        Checkpointer::for_shard(dir, every, TENANT)
            .unwrap()
            .with_retention(keep),
    )
}

/// Where in the ingest protocol the process dies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CrashPoint {
    /// Batch `k` arrived but its WAL append never happened (no ack sent):
    /// disk holds state through batch `k-1` only.
    BeforeAppend,
    /// Batch `k` was appended (fsynced under `batch` durability) but the
    /// process died before the ack reached the client.
    AfterAppendBeforeAck,
    /// The client saw batch `k`'s ack; the crash hit before the next
    /// checkpoint. The acked batch must survive on the WAL alone.
    AfterAckBeforeCheckpoint,
    /// The crash tore the newest checkpoint mid-write; recovery must fall
    /// back to the retained predecessor and replay the WAL over it.
    MidCheckpoint,
}

const ALL_POINTS: [CrashPoint; 4] = [
    CrashPoint::BeforeAppend,
    CrashPoint::AfterAppendBeforeAck,
    CrashPoint::AfterAckBeforeCheckpoint,
    CrashPoint::MidCheckpoint,
];

/// One cell of the kill matrix: the stream, where in it the process
/// dies, and the persistence cadence in force when it does.
struct Cell<'a> {
    batches: &'a [Mat],
    k: usize,
    point: CrashPoint,
    torn: bool,
    cfg: &'a IMrDmdConfig,
    policy: GapPolicy,
    every: usize,
}

impl Cell<'_> {
    /// Builds the post-crash disk state: batches `0..k` fully ingested
    /// (checkpoint cadence `every`), then the crash at `point` while
    /// handling batch `k`. With `torn`, a partial frame (a real frame
    /// with its tail cut off mid-payload) is left on the log, as a crash
    /// inside the append's `write_all` would.
    fn build_crash_state(&self, dir: &Path) {
        let wal = Wal::open(dir, TENANT, Durability::Batch).unwrap();
        let mut shard = Shard::new(TENANT, ck(dir, self.every, 3)).with_wal(Some(wal));
        let mut pos = 0usize;
        let upto = match self.point {
            CrashPoint::MidCheckpoint => self.k + 1,
            _ => self.k,
        };
        for b in &self.batches[..upto] {
            shard.ingest(b, Some(pos), self.cfg, self.policy).unwrap();
            pos += b.cols();
        }
        let steps_now = pos as u64;
        drop(shard); // the "crash": in-memory state is gone, file handles closed

        match self.point {
            CrashPoint::BeforeAppend => {}
            CrashPoint::AfterAppendBeforeAck | CrashPoint::AfterAckBeforeCheckpoint => {
                // The append happened (durably, under `batch`) but nothing
                // after it did: log the repaired batch `k` by hand.
                let mut wal = Wal::open(dir, TENANT, Durability::Batch).unwrap();
                wal.append(steps_now, &repaired(self.batches, self.k, self.policy))
                    .unwrap();
            }
            CrashPoint::MidCheckpoint => {
                // Batch `k` completed, then the next checkpoint write tore:
                // flip bytes inside the newest checkpoint's payload.
                let history = shard_checkpoint_history(dir, TENANT).unwrap();
                let (_, newest) = history.first().expect("a checkpoint must exist");
                let mut raw = std::fs::read(newest).unwrap();
                let n = raw.len();
                for b in &mut raw[n - 16..] {
                    *b ^= 0xff;
                }
                std::fs::write(newest, &raw).unwrap();
            }
        }

        if self.torn {
            // A crash mid-`write_all` leaves a prefix of the next frame.
            // Write the next batch's frame for real, then cut into its tail.
            let next = self.next_index();
            if next < self.batches.len() {
                let first = self.batches[..next].iter().map(Mat::cols).sum::<usize>() as u64;
                let mut wal = Wal::open(dir, TENANT, Durability::Batch).unwrap();
                wal.append(first, &repaired(self.batches, next, self.policy))
                    .unwrap();
                drop(wal);
                let path = Wal::path_for(dir, TENANT);
                let len = std::fs::metadata(&path).unwrap().len();
                let f = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
                f.set_len(len - 9).unwrap();
            }
        }
    }

    /// Index of the first batch whose WAL frame never completed.
    fn next_index(&self) -> usize {
        match self.point {
            CrashPoint::BeforeAppend => self.k,
            _ => self.k + 1,
        }
    }

    /// Recovers the cell's shard and asserts the recovery half of the
    /// contract: the rebuilt state is bitwise equal to the oracle fed
    /// exactly the batches the disk could know about. Returns the shard
    /// (with a fresh WAL attached) plus how many batches its state holds.
    fn recover_and_check(&self, dir: &Path) -> (Shard, usize) {
        let Cell { point, torn, .. } = *self;
        let rec = Shard::recover(dir, TENANT, self.cfg, self.policy, ck(dir, self.every, 3));
        assert_ne!(
            rec.shard.state(),
            ShardState::Corrupt,
            "{point:?}/torn={torn}: recovery must not corrupt"
        );
        if torn {
            assert!(rec.torn_wal, "{point:?}: the torn tail must be detected");
        }
        if point == CrashPoint::MidCheckpoint {
            assert!(
                rec.fallbacks >= 1,
                "a torn newest checkpoint must be skipped"
            );
            assert!(rec.from_checkpoint, "the retained predecessor must load");
        }
        // Under `batch` durability every appended (= acked) batch is on
        // disk: the recovered state must hold them all, and nothing more.
        let have = self.next_index();
        let expect = oracle(self.batches, have, self.cfg, self.policy);
        let expect_json = serde_json::to_string(&expect).unwrap();
        assert_eq!(
            model_json(&rec.shard),
            expect_json,
            "{point:?}/torn={torn}: recovered state must be bitwise-identical \
             to the uninterrupted oracle through batch {have}"
        );
        let wal = Wal::open(dir, TENANT, Durability::Batch).unwrap();
        (rec.shard.with_wal(Some(wal)), have)
    }
}

/// Runs the client's at-least-once resume against the recovered shard:
/// every delivery whose ack was not observed is re-sent under its original
/// first-step label; duplicates come back 409 and are skipped.
fn resume_stream(
    shard: &mut Shard,
    batches: &[Mat],
    acked: usize,
    cfg: &IMrDmdConfig,
    policy: GapPolicy,
) {
    let mut pos = 0usize;
    for (i, b) in batches.iter().enumerate() {
        if i >= acked {
            match shard.ingest(b, Some(pos), cfg, policy) {
                Ok(_) => {}
                Err(e) => assert_eq!(
                    e.status(),
                    409,
                    "resend may only be refused as a duplicate: {e}"
                ),
            }
        }
        pos += b.cols();
    }
}

/// One matrix cell end to end: build crash state, recover, resume,
/// compare bitwise against the never-crashed oracle over the full stream.
fn run_cell(mut cell: Cell<'_>, cell_name: &str) {
    let dir = scratch_dir(cell_name);
    // A tear needs a "next" frame to cut into; past the last batch the
    // cell degenerates to its untorn twin.
    cell.torn = cell.torn && cell.next_index() < cell.batches.len();
    cell.build_crash_state(&dir);
    let (mut shard, recovered) = cell.recover_and_check(&dir);
    // The client resends from its own ack horizon, which can be behind
    // what recovery rebuilt (AfterAppendBeforeAck): those resends must be
    // absorbed as 409 duplicates, never double-absorbed.
    let acked = match cell.point {
        CrashPoint::BeforeAppend | CrashPoint::AfterAppendBeforeAck => cell.k,
        CrashPoint::AfterAckBeforeCheckpoint | CrashPoint::MidCheckpoint => cell.k + 1,
    };
    assert!(acked <= recovered || cell.point == CrashPoint::BeforeAppend);
    resume_stream(
        &mut shard,
        cell.batches,
        acked.min(recovered),
        cell.cfg,
        cell.policy,
    );
    let expect = oracle(cell.batches, cell.batches.len(), cell.cfg, cell.policy);
    assert_eq!(
        model_json(&shard),
        serde_json::to_string(&expect).unwrap(),
        "{cell_name}: resumed state diverged from the uninterrupted oracle"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// The full kill matrix: every crash point × torn-tail × two crash
/// indices, all under `batch` durability, all required to recover
/// bitwise with no acked batch lost.
#[test]
fn crash_matrix_recovers_bitwise() {
    let (dt, batches) = gappy_batches(11, 160, 40);
    let cfg = cfg(dt, 1, FitStrategy::Exact);
    for k in [1, 2] {
        for point in ALL_POINTS {
            for torn in [false, true] {
                let name = format!("cell-{k}-{point:?}-torn{torn}");
                run_cell(
                    Cell {
                        batches: &batches,
                        k,
                        point,
                        torn,
                        cfg: &cfg,
                        policy: GapPolicy::Interpolate,
                        every: 1,
                    },
                    &name,
                );
            }
        }
    }
}

/// Sparse checkpoints (every 2 batches) force recovery to lean on WAL
/// replay for the uncheckpointed tail.
#[test]
fn wal_replay_covers_uncheckpointed_tail() {
    let (dt, batches) = gappy_batches(23, 160, 40);
    let cfg = cfg(dt, 1, FitStrategy::Exact);
    run_cell(
        Cell {
            batches: &batches,
            k: 3,
            point: CrashPoint::AfterAckBeforeCheckpoint,
            torn: false,
            cfg: &cfg,
            policy: GapPolicy::Interpolate,
            every: 2,
        },
        "sparse-ckpt",
    );
}

/// The retention satellite: with keep-last-K pruning, the oldest
/// checkpoints are deleted, the newest K survive, and a corrupt newest
/// falls back to a retained predecessor (covered in the matrix's
/// MidCheckpoint column; here the pruning itself is pinned down).
#[test]
fn checkpoint_retention_keeps_last_k() {
    let (dt, batches) = gappy_batches(31, 200, 40);
    let cfg = cfg(dt, 1, FitStrategy::Exact);
    let dir = scratch_dir("retention");
    let wal = Wal::open(&dir, TENANT, Durability::Batch).unwrap();
    let mut shard = Shard::new(TENANT, ck(&dir, 1, 3)).with_wal(Some(wal));
    let mut pos = 0;
    for b in &batches {
        shard
            .ingest(b, Some(pos), &cfg, GapPolicy::Interpolate)
            .unwrap();
        pos += b.cols();
    }
    drop(shard);
    let history = shard_checkpoint_history(&dir, TENANT).unwrap();
    assert_eq!(
        history.len(),
        3,
        "5 checkpoints written, keep-last-3 must prune to 3"
    );
    let newest = history.first().unwrap().0;
    assert_eq!(
        newest as usize, pos,
        "the newest checkpoint is never pruned"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Disk-full simulation: an injected WAL append failure must degrade the
/// shard — it keeps absorbing and acking, reports the cause, and never
/// crashes — and the degradation is sticky.
#[test]
fn wal_append_failure_degrades_but_keeps_serving() {
    let (dt, batches) = gappy_batches(47, 160, 40);
    let cfg = cfg(dt, 1, FitStrategy::Exact);
    let dir = scratch_dir("degrade");
    let wal = Wal::open(&dir, TENANT, Durability::Batch).unwrap();
    let mut shard = Shard::new(TENANT, ck(&dir, 1, 3)).with_wal(Some(wal));
    shard
        .ingest(&batches[0], Some(0), &cfg, GapPolicy::Interpolate)
        .unwrap();
    assert_eq!(shard.state(), ShardState::Ready);

    imrdmd::wal::arm_append_failure(1);
    let mut pos = batches[0].cols();
    let r = shard
        .ingest(&batches[1], Some(pos), &cfg, GapPolicy::Interpolate)
        .unwrap();
    imrdmd::wal::disarm_append_failure();
    assert!(!r.cold_start, "the batch itself must still be absorbed");
    assert_eq!(shard.state(), ShardState::DurabilityDegraded);
    let status = shard.status();
    assert!(
        status
            .degraded_cause
            .as_deref()
            .unwrap_or("")
            .contains("injected"),
        "{:?}",
        status.degraded_cause
    );

    // Still serving, still absorbing; the WAL stays off (sticky).
    pos += batches[1].cols();
    shard
        .ingest(&batches[2], Some(pos), &cfg, GapPolicy::Interpolate)
        .unwrap();
    assert!(shard.health().is_ok());
    assert_eq!(shard.state(), ShardState::DurabilityDegraded);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Fleet admission control: beyond the in-flight budget, ingests are shed
/// with 503 + `Retry-After`, and slots free when permits drop.
#[test]
fn admission_budget_sheds_with_retry_after() {
    let mgr = ShardManager::new(ManagerConfig {
        max_inflight: 2,
        ..ManagerConfig::default()
    });
    let p1 = mgr.admit_ingest().unwrap();
    let _p2 = mgr.admit_ingest().unwrap();
    let err = mgr.admit_ingest().unwrap_err();
    assert_eq!(err.status(), 503);
    assert_eq!(
        err.retry_after(),
        Some(1),
        "load sheds must carry Retry-After"
    );
    drop(p1);
    let _p3 = mgr.admit_ingest().expect("a dropped permit frees its slot");

    // The tenant cap carries its own (slower) Retry-After.
    let tight = ShardManager::new(ManagerConfig {
        max_tenants: 1,
        ..ManagerConfig::default()
    });
    tight.shard_or_create("a").unwrap();
    let err = tight.shard_or_create("b").unwrap_err();
    assert_eq!(err.status(), 429);
    assert_eq!(err.retry_after(), Some(5));
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// Randomized crash cells: any crash point, any crash index, any
    /// thread count, exact or sketched fits, torn or clean tails —
    /// checkpoint + WAL replay + resend is always bitwise-identical to
    /// uninterrupted streaming.
    #[test]
    fn recovery_is_bitwise_for_arbitrary_crash_points(
        seed in 0u64..50,
        k in 1usize..4,
        point_idx in 0usize..4,
        torn in proptest::sample_select(vec![false, true]),
        n_threads in proptest::sample_select(vec![1usize, 2, 4]),
        sketched in proptest::sample_select(vec![false, true]),
    ) {
        let (dt, batches) = gappy_batches(seed, 160, 40);
        let strategy = if sketched {
            FitStrategy::Sketched { rank_oversample: 6, power_iters: 1, seed: seed + 1 }
        } else {
            FitStrategy::Exact
        };
        let cfg = cfg(dt, n_threads, strategy);
        let name = format!(
            "prop-{seed}-{k}-{point_idx}-{torn}-{n_threads}-{sketched}"
        );
        run_cell(
            Cell {
                batches: &batches,
                k,
                point: ALL_POINTS[point_idx],
                torn,
                cfg: &cfg,
                policy: GapPolicy::Interpolate,
                every: 1,
            },
            &name,
        );
    }
}
