//! Property-based round-trip tests for the mode archive: across scenario
//! shapes, tree depths, and rank-selection rules, every quantization tier
//! reconstructs within its advertised relative-error bound, the f64 tier is
//! bitwise, and arbitrary time ranges replay identically to the in-memory
//! reconstruction of the same range — from the archive file alone.

use mrdmd_suite::prelude::*;
use proptest::prelude::*;

fn scratch(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("imrdmd-archive-proptest");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

fn fitted(n_nodes: usize, total: usize, seed: u64, levels: usize, rank: RankSelection) -> IMrDmd {
    let mut machine = theta().scaled(n_nodes);
    machine.series_per_node = 1;
    let scenario = Scenario::sc_log(machine, total, seed);
    let data = scenario.generate(0, total);
    let cfg = IMrDmdConfig {
        mr: MrDmdConfig {
            dt: scenario.dt(),
            max_levels: levels,
            max_cycles: 2,
            rank,
            ..MrDmdConfig::default()
        },
        ..IMrDmdConfig::default()
    };
    IMrDmd::fit(&data, &cfg)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// Tier × depth × rank sweep: each tier's full replay honors its bound
    /// (f64 exactly, lossy tiers within their advertised relative error).
    #[test]
    fn every_tier_replays_within_its_bound(
        n_nodes in 8usize..20,
        total in 128usize..320,
        seed in 0u64..500,
        levels in 2usize..5,
        rank_pick in 0usize..3,
    ) {
        let rank = match rank_pick {
            0 => RankSelection::Svht,
            1 => RankSelection::Fixed(3),
            _ => RankSelection::Energy(0.95),
        };
        let model = fitted(n_nodes, total, seed, levels, rank);
        let exact = model.reconstruct();
        let norm = exact
            .as_slice()
            .iter()
            .fold(0.0f64, |m, v| m.max(v.abs()))
            .max(1e-300);
        for tier in [QuantTier::F64, QuantTier::F32, QuantTier::Q16] {
            let path = scratch(&format!(
                "bound-{n_nodes}-{total}-{seed}-{levels}-{rank_pick}.{tier}.arch"
            ));
            let info = write_archive(&model, &path, tier).unwrap();
            prop_assert_eq!(info.n_steps, total);
            let mut reader = ArchiveReader::open(&path).unwrap();
            let approx = reader.replay_all().unwrap();
            prop_assert_eq!(approx.shape(), exact.shape());
            match tier {
                QuantTier::F64 => {
                    for (a, b) in exact.as_slice().iter().zip(approx.as_slice()) {
                        prop_assert!(a.to_bits() == b.to_bits(), "f64 replay must be bitwise");
                    }
                }
                _ => {
                    let err = exact
                        .as_slice()
                        .iter()
                        .zip(approx.as_slice())
                        .fold(0.0f64, |m, (a, b)| m.max((a - b).abs()))
                        / norm;
                    prop_assert!(
                        err <= tier.rel_error_bound(),
                        "tier {} rel error {:e} exceeds {:e}",
                        tier, err, tier.rel_error_bound()
                    );
                }
            }
            let _ = std::fs::remove_file(&path);
        }
    }

    /// Any sub-range replays bitwise-equal (at f64) to `reconstruct_range`
    /// over the same window, while streaming only the admitting blocks.
    #[test]
    fn arbitrary_ranges_replay_bitwise_at_f64(
        seed in 0u64..500,
        levels in 2usize..5,
        lo_frac in 0.0f64..0.9,
        span_frac in 0.05f64..0.5,
    ) {
        let total = 320;
        let model = fitted(12, total, seed, levels, RankSelection::Svht);
        let t0 = (lo_frac * total as f64) as usize;
        let t1 = (t0 + (span_frac * total as f64) as usize + 1).min(total);
        let path = scratch(&format!("range-{seed}-{levels}-{t0}-{t1}.arch"));
        write_archive(&model, &path, QuantTier::F64).unwrap();
        let mut reader = ArchiveReader::open(&path).unwrap();
        let replayed = reader.replay(t0, t1).unwrap();
        let expect = model.reconstruct_range(t0, t1);
        prop_assert_eq!(replayed.shape(), expect.shape());
        for (a, b) in expect.as_slice().iter().zip(replayed.as_slice()) {
            prop_assert!(
                a.to_bits() == b.to_bits(),
                "range [{}, {}) must replay bitwise", t0, t1
            );
        }
        // The seekable index earns its bytes: a narrow range must not scan
        // the whole tree (every level-1 node admits, deeper ones may not).
        prop_assert!(reader.blocks_read() <= reader.info().n_nodes as u64);
        let _ = std::fs::remove_file(&path);
    }
}
