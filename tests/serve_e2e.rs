//! End-to-end tests for the `imrdmd-serve` daemon: a multi-tenant fleet of
//! fault-corrupted telemetry streams driven over real TCP, with every
//! response checked bitwise against an in-process I-mrDMD oracle fed the
//! same batches. Also covers crash recovery (kill-and-resume from interval
//! checkpoints) and torn-checkpoint degradation.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::time::Duration;

use imrdmd_serve::{HttpLimits, ServeConfig, Server, ServerHandle};
use mrdmd_suite::prelude::*;
use mrdmd_suite::telemetry::write_snapshots_csv;

// ---------------------------------------------------------------------------
// Harness
// ---------------------------------------------------------------------------

fn model_cfg(dt: f64, n_threads: usize) -> IMrDmdConfig {
    IMrDmdConfig {
        mr: MrDmdConfig {
            dt,
            max_levels: 4,
            max_cycles: 2,
            rank: RankSelection::Svht,
            n_threads,
            ..MrDmdConfig::default()
        },
        ..IMrDmdConfig::default()
    }
}

fn serve_cfg(dt: f64, n_threads: usize, checkpoint_dir: Option<PathBuf>) -> ServeConfig {
    ServeConfig {
        model: model_cfg(dt, n_threads),
        policy: GapPolicy::Interpolate,
        checkpoint_dir,
        checkpoint_every: 1,
        limits: HttpLimits::default(),
        read_timeout: Duration::from_secs(5),
        ..ServeConfig::default()
    }
}

struct Daemon {
    addr: SocketAddr,
    handle: ServerHandle,
    worker: std::thread::JoinHandle<std::io::Result<()>>,
    restored: usize,
    corrupt: usize,
}

fn start(cfg: ServeConfig) -> Daemon {
    let (server, restored, corrupt) = Server::bind("127.0.0.1:0", cfg).unwrap();
    let addr = server.local_addr();
    let handle = server.handle();
    let worker = std::thread::spawn(move || server.run());
    Daemon {
        addr,
        handle,
        worker,
        restored,
        corrupt,
    }
}

impl Daemon {
    fn shutdown(self) {
        self.handle.shutdown();
        self.worker.join().unwrap().unwrap();
    }

    fn kill(self) {
        self.handle.kill();
        self.worker.join().unwrap().unwrap();
    }
}

/// One request over a fresh connection; returns `(status, body)`.
fn request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    content_type: Option<&str>,
    body: &[u8],
) -> (u16, String) {
    let mut conn = TcpStream::connect(addr).unwrap();
    let mut head = format!("{method} {path} HTTP/1.1\r\nHost: fleet\r\nConnection: close\r\n");
    if let Some(ct) = content_type {
        head.push_str(&format!("Content-Type: {ct}\r\n"));
    }
    head.push_str(&format!("Content-Length: {}\r\n\r\n", body.len()));
    conn.write_all(head.as_bytes()).unwrap();
    conn.write_all(body).unwrap();
    let mut raw = Vec::new();
    conn.read_to_end(&mut raw).unwrap();
    let text = String::from_utf8(raw).unwrap();
    let status: u16 = text
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("malformed response: {text:?}"));
    let body = text
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

fn get(addr: SocketAddr, path: &str) -> (u16, String) {
    request(addr, "GET", path, None, b"")
}

/// Binary-safe GET for octet-stream replies: `(status, body_bytes)`.
fn get_bytes(addr: SocketAddr, path: &str) -> (u16, Vec<u8>) {
    let mut conn = TcpStream::connect(addr).unwrap();
    conn.write_all(
        format!("GET {path} HTTP/1.1\r\nHost: fleet\r\nConnection: close\r\n\r\n").as_bytes(),
    )
    .unwrap();
    let mut raw = Vec::new();
    conn.read_to_end(&mut raw).unwrap();
    let split = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .expect("no header/body split");
    let head = String::from_utf8_lossy(&raw[..split]);
    let status: u16 = head.split_whitespace().nth(1).unwrap().parse().unwrap();
    (status, raw[split + 4..].to_vec())
}

fn post_csv(addr: SocketAddr, tenant: &str, batch: &Mat, first_step: usize) -> (u16, String) {
    let mut body = Vec::new();
    write_snapshots_csv(&mut body, batch, first_step).unwrap();
    request(
        addr,
        "POST",
        &format!("/v1/{tenant}/ingest"),
        Some("text/csv"),
        &body,
    )
}

fn same_bits(a: &Mat, b: &Mat) -> bool {
    a.shape() == b.shape()
        && a.as_slice()
            .iter()
            .zip(b.as_slice())
            .all(|(x, y)| x.to_bits() == y.to_bits())
}

/// One labelled delivery: `(redelivery, first_step, batch)`.
///
/// Models a real at-least-once collector: every fresh batch carries its true
/// stream position, and a fault-injected duplicate (which `FaultInjector`
/// emits back to back, bitwise-identical) is re-sent under its **original**
/// label — exactly what a restarted collector replaying its buffer does.
/// The server must 409 those instead of absorbing the window twice.
type Delivery = (bool, usize, Mat);

fn deliveries(batches: &[Mat]) -> Vec<Delivery> {
    let mut out: Vec<Delivery> = Vec::new();
    let mut pos = 0usize;
    for b in batches {
        let dup = out
            .iter()
            .rev()
            .find(|(is_dup, _, _)| !is_dup)
            .is_some_and(|(_, s, prev)| same_bits(prev, b) && s + prev.cols() == pos);
        if dup {
            let (_, s, _) = *out.iter().rev().find(|(is_dup, _, _)| !is_dup).unwrap();
            out.push((true, s, b.clone()));
        } else {
            out.push((false, pos, b.clone()));
            pos += b.cols();
        }
    }
    out
}

/// The in-process reference: the exact cold-start + `try_partial_fit`
/// sequence the daemon's shard runs, fed the same labelled deliveries with
/// the same duplicate-rejection rule.
struct Oracle {
    cfg: IMrDmdConfig,
    policy: GapPolicy,
    model: Option<IMrDmd>,
    guard: Option<IngestGuard>,
}

impl Oracle {
    fn new(cfg: IMrDmdConfig, policy: GapPolicy) -> Oracle {
        Oracle {
            cfg,
            policy,
            model: None,
            guard: None,
        }
    }

    fn ingest(&mut self, first_step: usize, batch: &Mat) {
        let steps = self.model.as_ref().map_or(0, |m| m.n_steps());
        if first_step != steps {
            return; // duplicate window: the daemon answers 409 and absorbs nothing
        }
        match &mut self.model {
            None => {
                let mut guard = IngestGuard::new(self.policy, batch.rows());
                let (clean, _) = guard.repair(batch).unwrap();
                self.model = Some(IMrDmd::fit(clean.as_ref().unwrap_or(batch), &self.cfg));
                self.guard = Some(guard);
            }
            Some(model) => {
                let guard = self.guard.as_mut().unwrap();
                model.try_partial_fit(batch, guard).unwrap();
            }
        }
    }

    fn model(&self) -> &IMrDmd {
        self.model.as_ref().unwrap()
    }
}

fn oracle_for(driver: &FleetDriver, k: usize, cfg: &IMrDmdConfig, upto: Option<usize>) -> Oracle {
    let mut oracle = Oracle::new(*cfg, GapPolicy::Interpolate);
    let dels = deliveries(&driver.tenant_batches(k));
    let n = upto.unwrap_or(dels.len());
    for (_, first, batch) in &dels[..n] {
        oracle.ingest(*first, batch);
    }
    oracle
}

fn scratch_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("imrdmd-serve-e2e").join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn json<T: serde::Serialize>(v: &T) -> String {
    serde_json::to_string(v).unwrap()
}

// ---------------------------------------------------------------------------
// Tests
// ---------------------------------------------------------------------------

/// The acceptance e2e: eight tenants stream fault-corrupted telemetry
/// (NaN runs, dropped samples, sensor dropout, duplicated batches) into the
/// daemon concurrently; every tenant's health and spectrum responses are
/// **bitwise** equal (string equality on the serde JSON) to an in-process
/// oracle fed the same batches.
#[test]
fn eight_faulty_tenants_match_in_process_oracle_bitwise() {
    let driver = FleetDriver::new(FleetSpec {
        tenants: 8,
        nodes_per_tenant: 4,
        steps: 240,
        chunk: 60,
        base_seed: 77,
        faults: Some(FaultConfig {
            duplicate_prob: 0.4,
            ..FaultConfig::default()
        }),
    });
    let cfg = model_cfg(driver.dt(), 2);
    let daemon = start(serve_cfg(driver.dt(), 2, None));
    let addr = daemon.addr;
    let names = driver.tenant_names();

    // The duplicate-rejection path must actually be exercised somewhere in
    // the fleet (seeds are fixed, so this is deterministic).
    let fleet_dups: usize = (0..names.len())
        .map(|k| {
            deliveries(&driver.tenant_batches(k))
                .iter()
                .filter(|(d, _, _)| *d)
                .count()
        })
        .sum();
    assert!(
        fleet_dups > 0,
        "duplicate_prob=0.4 across the fleet should duplicate at least one batch"
    );

    // One client thread per tenant, all hammering the daemon at once.
    let mut clients = Vec::new();
    for (k, name) in names.iter().enumerate() {
        let dels = deliveries(&driver.tenant_batches(k));
        let name = name.clone();
        clients.push(std::thread::spawn(move || {
            for (is_dup, first, batch) in &dels {
                let (status, body) = post_csv(addr, &name, batch, *first);
                if *is_dup {
                    assert_eq!(status, 409, "tenant {name}: duplicate not refused: {body}");
                } else {
                    assert_eq!(status, 200, "tenant {name}: ingest failed: {body}");
                }
            }
        }));
    }
    for c in clients {
        c.join().unwrap();
    }

    for (k, name) in names.iter().enumerate() {
        let oracle = oracle_for(&driver, k, &cfg, None);
        let model = oracle.model();

        let (s, health) = get(addr, &format!("/v1/{name}/health"));
        assert_eq!(s, 200);
        assert_eq!(
            health,
            json(&model.health()),
            "tenant {name}: health diverged"
        );

        let (s, spectrum) = get(addr, &format!("/v1/{name}/spectrum"));
        assert_eq!(s, 200);
        assert_eq!(
            spectrum,
            json(&mode_spectrum(model.nodes())),
            "tenant {name}: spectrum diverged"
        );

        let (s, forecast) = get(addr, &format!("/v1/{name}/forecast?h=8"));
        assert_eq!(s, 200);
        assert_eq!(
            forecast,
            json(&model.forecast(8)),
            "tenant {name}: forecast diverged"
        );

        let (s, status) = get(addr, &format!("/v1/{name}/status"));
        assert_eq!(s, 200);
        assert!(
            status.contains(&format!("\"steps\":{}", model.n_steps())),
            "tenant {name}: status steps diverged: {status}"
        );
    }

    let (s, tenants) = get(addr, "/v1/tenants");
    assert_eq!(s, 200);
    assert_eq!(tenants, json(&names));

    let (s, body) = get(addr, "/healthz");
    assert_eq!(s, 200);
    assert!(body.contains("\"shards\":8"), "{body}");

    let (s, metrics) = get(addr, "/metrics");
    assert_eq!(s, 200);
    for series in [
        "# TYPE serve_requests counter",
        "serve_ingest_batches",
        "serve_request_ns_bucket{le=",
        "serve_ingest_ns_sum",
        "serve_shards 8",
    ] {
        assert!(metrics.contains(series), "missing `{series}` in /metrics");
    }

    daemon.shutdown();
}

/// The daemon's promise of bitwise determinism: the same fleet served with
/// the worker pool at 1, 2, and 4 threads — and with the natural request
/// interleaving of concurrent clients differing run to run — must produce
/// byte-identical health, spectrum, and reconstruction responses.
#[test]
fn responses_identical_across_thread_counts_and_interleavings() {
    let driver = FleetDriver::new(FleetSpec {
        tenants: 4,
        nodes_per_tenant: 3,
        steps: 180,
        chunk: 45,
        base_seed: 101,
        faults: Some(FaultConfig {
            duplicate_prob: 0.3,
            ..FaultConfig::default()
        }),
    });
    let names = driver.tenant_names();

    let mut runs: Vec<Vec<(String, String, String)>> = Vec::new();
    for n_threads in [1usize, 2, 4] {
        let daemon = start(serve_cfg(driver.dt(), n_threads, None));
        let addr = daemon.addr;

        let mut clients = Vec::new();
        for (k, name) in names.iter().enumerate() {
            let dels = deliveries(&driver.tenant_batches(k));
            let name = name.clone();
            clients.push(std::thread::spawn(move || {
                for (_, first, batch) in &dels {
                    post_csv(addr, &name, batch, *first);
                }
            }));
        }
        for c in clients {
            c.join().unwrap();
        }

        let responses = names
            .iter()
            .map(|name| {
                let (s, health) = get(addr, &format!("/v1/{name}/health"));
                assert_eq!(s, 200, "{health}");
                let (s, spectrum) = get(addr, &format!("/v1/{name}/spectrum"));
                assert_eq!(s, 200, "{spectrum}");
                let (s, recon) = get(addr, &format!("/v1/{name}/reconstruct"));
                assert_eq!(s, 200, "{recon}");
                (health, spectrum, recon)
            })
            .collect();
        runs.push(responses);
        daemon.shutdown();
    }

    assert_eq!(runs[0], runs[1], "1-thread vs 2-thread responses diverged");
    assert_eq!(runs[0], runs[2], "1-thread vs 4-thread responses diverged");
}

/// Crash recovery: kill the daemon (no drain, no final checkpoint) halfway
/// through every tenant's stream, restart from the interval checkpoints,
/// finish streaming — and every shard's reconstruction is bitwise-identical
/// to an uninterrupted in-process run.
#[test]
fn kill_and_resume_is_bitwise_identical_to_uninterrupted_run() {
    let driver = FleetDriver::new(FleetSpec {
        tenants: 3,
        nodes_per_tenant: 4,
        steps: 240,
        chunk: 60,
        base_seed: 5,
        faults: Some(FaultConfig {
            duplicate_prob: 0.5,
            ..FaultConfig::default()
        }),
    });
    let cfg = model_cfg(driver.dt(), 2);
    let dir = scratch_dir("kill-resume");
    let names = driver.tenant_names();
    let splits: Vec<usize> = (0..names.len())
        .map(|k| {
            let n = deliveries(&driver.tenant_batches(k)).len();
            assert!(n >= 2, "need at least two deliveries to split");
            n / 2
        })
        .collect();

    // Phase 1: stream the first half, then pull the plug. checkpoint_every=1
    // means every acknowledged batch is already on disk when we do.
    let daemon = start(serve_cfg(driver.dt(), 2, Some(dir.clone())));
    let addr = daemon.addr;
    for (k, name) in names.iter().enumerate() {
        for (_, first, batch) in &deliveries(&driver.tenant_batches(k))[..splits[k]] {
            post_csv(addr, name, batch, *first);
        }
    }
    daemon.kill();

    // Phase 2: reboot from the checkpoints, confirm every shard resumed at
    // exactly the half-way clock, and finish the streams.
    let daemon = start(serve_cfg(driver.dt(), 2, Some(dir)));
    assert_eq!(
        (daemon.restored, daemon.corrupt),
        (names.len(), 0),
        "every shard must restore cleanly"
    );
    let addr = daemon.addr;
    for (k, name) in names.iter().enumerate() {
        let half = oracle_for(&driver, k, &cfg, Some(splits[k]));
        let (s, status) = get(addr, &format!("/v1/{name}/status"));
        assert_eq!(s, 200);
        assert!(
            status.contains(&format!("\"steps\":{}", half.model().n_steps())),
            "tenant {name} resumed at the wrong clock: {status}"
        );
        for (_, first, batch) in &deliveries(&driver.tenant_batches(k))[splits[k]..] {
            post_csv(addr, name, batch, *first);
        }
    }

    for (k, name) in names.iter().enumerate() {
        let oracle = oracle_for(&driver, k, &cfg, None);
        let (s, recon) = get(addr, &format!("/v1/{name}/reconstruct"));
        assert_eq!(s, 200);
        assert_eq!(
            recon,
            json(&oracle.model().reconstruct()),
            "tenant {name}: reconstruction diverged after kill-and-resume"
        );
        let (s, health) = get(addr, &format!("/v1/{name}/health"));
        assert_eq!(s, 200);
        assert_eq!(
            health,
            json(&oracle.model().health()),
            "tenant {name}: health diverged after kill-and-resume"
        );
    }
    daemon.shutdown();
}

/// A torn checkpoint file must degrade exactly one shard to `Corrupt`
/// (503 on its routes, cause visible in `/status`) while the rest of the
/// fleet boots and serves normally.
#[test]
fn torn_checkpoint_degrades_one_shard_not_the_fleet() {
    let driver = FleetDriver::new(FleetSpec {
        tenants: 2,
        nodes_per_tenant: 4,
        steps: 120,
        chunk: 60,
        base_seed: 9,
        faults: None,
    });
    let dir = scratch_dir("torn-ckpt");
    let names = driver.tenant_names();

    let daemon = start(serve_cfg(driver.dt(), 1, Some(dir.clone())));
    let addr = daemon.addr;
    for (k, name) in names.iter().enumerate() {
        for (_, first, batch) in &deliveries(&driver.tenant_batches(k)) {
            let (s, body) = post_csv(addr, name, batch, *first);
            assert_eq!(s, 200, "{body}");
        }
    }
    daemon.shutdown();

    // Tear *every* checkpoint of tenant 0: flip bytes inside the payload
    // so the CRC check fails on restore. (A torn newest alone no longer
    // corrupts the shard — recovery falls back to the retained
    // predecessor and replays the WAL tail.) The WAL cannot rebuild from
    // step 0 either: it was truncated up to the oldest retained
    // checkpoint, so the shard is genuinely unrecoverable.
    let victim = &names[0];
    let history = imrdmd::prelude::shard_checkpoint_history(&dir, victim).unwrap();
    assert!(!history.is_empty(), "no checkpoint for {victim}");
    for (_, path) in &history {
        let mut raw = std::fs::read(path).unwrap();
        let n = raw.len();
        for b in &mut raw[n - 16..] {
            *b ^= 0xff;
        }
        std::fs::write(path, &raw).unwrap();
    }

    let daemon = start(serve_cfg(driver.dt(), 1, Some(dir)));
    assert_eq!((daemon.restored, daemon.corrupt), (1, 1));
    let addr = daemon.addr;

    let (s, body) = get(addr, &format!("/v1/{victim}/health"));
    assert_eq!(s, 503, "torn shard must refuse reads: {body}");
    assert!(body.contains("error"), "{body}");
    let (s, body) = get(addr, &format!("/v1/{victim}/status"));
    assert_eq!(s, 200, "status must stay readable for the operator");
    assert!(body.contains("Corrupt"), "{body}");
    assert!(body.contains("corrupt_cause"), "{body}");
    let batch = driver.tenant_batches(0).remove(0);
    let (s, body) = post_csv(addr, victim, &batch, 0);
    assert_eq!(s, 503, "torn shard must refuse writes: {body}");

    // The survivor serves; the daemon is alive and says so.
    let (s, body) = get(addr, &format!("/v1/{}/health", names[1]));
    assert_eq!(s, 200, "{body}");
    let (s, _) = get(addr, "/healthz");
    assert_eq!(s, 200);
    let (s, metrics) = get(addr, "/metrics");
    assert_eq!(s, 200);
    assert!(metrics.contains("serve_shards_corrupt 1"), "{metrics}");

    daemon.shutdown();
}

/// JSON-lines ingest speaks the same model: a shard fed ndjson bodies
/// matches an oracle fed the equivalent matrices.
#[test]
fn ndjson_ingest_matches_oracle() {
    let driver = FleetDriver::new(FleetSpec {
        tenants: 1,
        nodes_per_tenant: 3,
        steps: 120,
        chunk: 60,
        base_seed: 23,
        faults: None,
    });
    let cfg = model_cfg(driver.dt(), 1);
    let daemon = start(serve_cfg(driver.dt(), 1, None));
    let addr = daemon.addr;

    let batches = driver.tenant_batches(0);
    let mut oracle = Oracle::new(cfg, GapPolicy::Interpolate);
    let mut pos = 0usize;
    for batch in &batches {
        let mut body = String::new();
        for j in 0..batch.cols() {
            let line: Vec<String> = (0..batch.rows())
                .map(|i| {
                    let v = batch[(i, j)];
                    if v.is_nan() {
                        "null".to_string()
                    } else {
                        // Shortest round-trip form, same as the CSV writer:
                        // the parsed f64 is bitwise the original.
                        format!("{v}")
                    }
                })
                .collect();
            body.push_str(&format!("[{}]\n", line.join(",")));
        }
        let (s, reply) = request(
            addr,
            "POST",
            "/v1/t00/ingest",
            Some("application/x-ndjson"),
            body.as_bytes(),
        );
        assert_eq!(s, 200, "{reply}");
        oracle.ingest(pos, batch);
        pos += batch.cols();
    }

    let (s, health) = get(addr, "/v1/t00/health");
    assert_eq!(s, 200);
    assert_eq!(health, json(&oracle.model().health()));
    daemon.shutdown();
}

/// The `/archive` route serves the exact seekable-archive wire format: the
/// f64-tier bytes, written straight to a file, replay bitwise-equal to the
/// in-process oracle's reconstruction — no model JSON anywhere in the loop.
#[test]
fn archive_route_replays_bitwise_against_oracle() {
    let driver = FleetDriver::new(FleetSpec {
        tenants: 1,
        nodes_per_tenant: 6,
        steps: 180,
        chunk: 60,
        base_seed: 31,
        faults: None,
    });
    let cfg = model_cfg(driver.dt(), 1);
    let daemon = start(serve_cfg(driver.dt(), 1, None));
    let addr = daemon.addr;
    let names = driver.tenant_names();
    let tenant = names[0].as_str();
    for (_, first, batch) in deliveries(&driver.tenant_batches(0)) {
        let (status, body) = post_csv(addr, tenant, &batch, first);
        assert_eq!(status, 200, "{body}");
    }
    let oracle = oracle_for(&driver, 0, &cfg, None);

    // f64 tier: persist the served bytes, open, replay a sub-range.
    let (status, bytes) = get_bytes(addr, &format!("/v1/{tenant}/archive?tier=f64"));
    assert_eq!(status, 200);
    let path = scratch_dir("archive_route").join("t.arch");
    std::fs::write(&path, &bytes).unwrap();
    let mut reader = ArchiveReader::open(&path).unwrap();
    assert_eq!(reader.info().n_steps, 180);
    let replayed = reader.replay(60, 180).unwrap();
    let expect = oracle.model().reconstruct_range(60, 180);
    assert!(
        same_bits(&replayed, &expect),
        "served archive must replay bitwise at f64"
    );

    // The default tier is q16 — materially smaller than f64 — and flag
    // abuse stays typed: bad tier 400, wrong method 405.
    let (status, q16) = get_bytes(addr, &format!("/v1/{tenant}/archive"));
    assert_eq!(status, 200);
    assert!(q16.len() < bytes.len(), "q16 must be smaller than f64");
    let (status, _) = get(addr, &format!("/v1/{tenant}/archive?tier=f16"));
    assert_eq!(status, 400);
    let (status, _) = request(addr, "POST", &format!("/v1/{tenant}/archive"), None, b"");
    assert_eq!(status, 405);

    daemon.shutdown();
}
