//! Property-based integration tests over the full stack.

use mrdmd_suite::prelude::*;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// The pipeline never produces non-finite outputs, whatever the scenario
    /// parameters.
    #[test]
    fn pipeline_outputs_always_finite(
        n_nodes in 8usize..32,
        total in 128usize..320,
        seed in 0u64..1000,
        levels in 2usize..5,
    ) {
        let mut machine = theta().scaled(n_nodes);
        machine.series_per_node = 1;
        let scenario = Scenario::sc_log(machine, total, seed);
        let data = scenario.generate(0, total);
        prop_assert!(data.as_slice().iter().all(|v| v.is_finite()));
        let cfg = IMrDmdConfig {
            mr: MrDmdConfig {
                dt: scenario.dt(),
                max_levels: levels,
                max_cycles: 2,
                rank: RankSelection::Svht,
                ..MrDmdConfig::default()
            },
            ..IMrDmdConfig::default()
        };
        let model = IMrDmd::fit(&data, &cfg);
        let rec = model.reconstruct();
        prop_assert!(rec.as_slice().iter().all(|v| v.is_finite()));
        for p in mode_spectrum(model.nodes()) {
            prop_assert!(p.power.is_finite() && p.power >= 0.0);
            prop_assert!(p.frequency_hz.is_finite() && p.frequency_hz >= 0.0);
            prop_assert!(p.level >= 1 && p.level <= levels);
        }
        let mags = row_mode_magnitudes(model.nodes(), &BandFilter::all(), data.rows());
        prop_assert!(mags.iter().all(|m| m.is_finite() && *m >= 0.0));
    }

    /// Streaming any chunking of the same scenario absorbs the same number
    /// of snapshots and keeps the root spanning the full timeline.
    #[test]
    fn streaming_invariants_hold_for_any_chunking(
        chunk in 16usize..200,
        seed in 0u64..100,
    ) {
        let total = 400;
        let mut machine = theta().scaled(12);
        machine.series_per_node = 1;
        let scenario = Scenario::sc_log(machine, total, seed);
        let cfg = IMrDmdConfig {
            mr: MrDmdConfig {
                dt: scenario.dt(),
                max_levels: 3,
                max_cycles: 2,
                rank: RankSelection::Svht,
                ..MrDmdConfig::default()
            },
            ..IMrDmdConfig::default()
        };
        let mut stream = ChunkStream::new(&scenario, 0, total, chunk);
        let first = stream.next().unwrap();
        let mut model = IMrDmd::fit(&first, &cfg);
        for batch in stream {
            model.partial_fit(&batch);
        }
        prop_assert_eq!(model.n_steps(), total);
        prop_assert_eq!(model.root().window, total);
        // Windows of non-root nodes never extend past the absorbed timeline.
        for node in model.nodes() {
            prop_assert!(node.start + node.window <= total);
        }
    }

    /// The layout parser round-trips every well-formed spec and never panics
    /// on arbitrary input.
    #[test]
    fn layout_roundtrip_and_no_panic(
        rows in 1usize..4,
        racks in 1usize..12,
        cabs in 1usize..8,
        slots in 1usize..8,
        blades in 1usize..4,
        nodes in 1usize..4,
        junk in "[ -~]{0,40}",
    ) {
        let s = format!(
            "sys 1 2 row0-{}:0-{} 2 c:0-{} 1 s:0-{} 1 b:0-{} n:0-{}",
            rows - 1, racks - 1, cabs - 1, slots - 1, blades - 1, nodes - 1
        );
        let l = LayoutSpec::parse(&s).expect("well-formed spec parses");
        prop_assert_eq!(l.total_nodes(), rows * racks * cabs * slots * blades * nodes);
        let l2 = LayoutSpec::parse(&l.to_layout_string()).expect("roundtrip parses");
        prop_assert_eq!(&l, &l2);
        // Every node index maps to a unique, in-range position.
        let pos = l.node_position(l.total_nodes() - 1);
        prop_assert!(pos.row <= l.rows.hi && pos.node <= l.nodes.hi);
        // Arbitrary junk must not panic — only return an error.
        let _ = LayoutSpec::parse(&junk);
    }

    /// Z-scores of the baseline population always average to ~0 with unit
    /// variance scale.
    #[test]
    fn zscore_normalisation_invariant(
        mags in proptest::collection::vec(0.0f64..1e4, 8..64),
        split in 3usize..6,
    ) {
        let baseline: Vec<usize> = (0..mags.len()).step_by(split).collect();
        prop_assume!(baseline.len() >= 2);
        // Degenerate all-equal baselines are allowed but uninformative.
        let z = ZScores::from_baseline(&mags, &baseline);
        prop_assert!(z.z.iter().all(|v| v.is_finite()));
        let mean: f64 = baseline.iter().map(|&i| z.z[i]).sum::<f64>() / baseline.len() as f64;
        prop_assert!(mean.abs() < 1e-6, "baseline z mean {mean}");
    }

    /// The telemetry generator is chunk-independent for arbitrary splits.
    #[test]
    fn generator_chunk_independence(
        split in 1usize..199,
        seed in 0u64..50,
    ) {
        let mut machine = theta().scaled(6);
        machine.series_per_node = 1;
        let scenario = Scenario::sc_log(machine, 200, seed);
        let whole = scenario.generate(0, 200);
        let a = scenario.generate(0, split);
        let b = scenario.generate(split, 200);
        prop_assert_eq!(a.hstack(&b), whole);
    }
}
