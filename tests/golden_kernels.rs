//! Golden-value regression tests for the dense kernels (ISSUE PR 1,
//! satellite 3): Householder QR, one-sided Jacobi SVD, Hessenberg-QR
//! eigendecomposition, and the incremental SVD, each checked against
//! hand-computed fixtures in `tests/fixtures/`.
//!
//! Fixture format: `#` starts a comment; otherwise the stream is
//! whitespace-separated tokens of repeated `name rows cols v…` sections
//! (row-major). Quantities that are only defined up to a sign convention
//! (columns of Q / singular vectors) are stored as absolute values.

use hpc_linalg::{c64, eig_real, qr, svd, IncrementalSvd, Mat};
use std::collections::BTreeMap;

const TOL: f64 = 1e-12;

fn load_fixture(name: &str) -> BTreeMap<String, Mat> {
    let path = format!("{}/tests/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read fixture {path}: {e}"));
    let mut tokens = text
        .lines()
        .map(|l| l.split('#').next().unwrap_or(""))
        .flat_map(|l| l.split_whitespace().map(String::from))
        .collect::<Vec<_>>()
        .into_iter();
    let mut sections = BTreeMap::new();
    while let Some(name) = tokens.next() {
        let rows: usize = tokens.next().expect("rows").parse().expect("rows");
        let cols: usize = tokens.next().expect("cols").parse().expect("cols");
        let data: Vec<f64> = (0..rows * cols)
            .map(|_| tokens.next().expect("value").parse().expect("value"))
            .collect();
        sections.insert(name, Mat::from_vec(rows, cols, data));
    }
    sections
}

/// Largest absolute entry-wise difference, after mapping both through `f`.
fn max_abs_diff(a: &Mat, b: &Mat, f: impl Fn(f64) -> f64) -> f64 {
    assert_eq!((a.rows(), a.cols()), (b.rows(), b.cols()), "shape mismatch");
    a.as_slice()
        .iter()
        .zip(b.as_slice())
        .map(|(x, y)| (f(*x) - f(*y)).abs())
        .fold(0.0, f64::max)
}

#[test]
fn qr_matches_householder_fixture() {
    let fx = load_fixture("qr_householder.txt");
    let a = &fx["a"];
    let d = qr(a);
    assert_eq!((d.q.rows(), d.q.cols()), (3, 2), "thin Q shape");
    assert_eq!((d.r.rows(), d.r.cols()), (2, 2), "thin R shape");
    assert!(
        max_abs_diff(&d.r, &fx["r_abs"], f64::abs) < TOL,
        "|R| golden"
    );
    assert!(
        max_abs_diff(&d.q, &fx["q_abs"], f64::abs) < TOL,
        "|Q| golden"
    );
    // Exactness invariants: Q·R reproduces A and Q has orthonormal columns.
    assert!(
        max_abs_diff(&d.q.matmul(&d.r), a, |x| x) < 1e-12 * 200.0,
        "Q·R = A"
    );
    let qtq = d.q.t_matmul(&d.q);
    for i in 0..2 {
        for j in 0..2 {
            let want = if i == j { 1.0 } else { 0.0 };
            assert!((qtq[(i, j)] - want).abs() < TOL, "QᵀQ = I");
        }
    }
}

#[test]
fn jacobi_svd_matches_fixtures() {
    let fx = load_fixture("svd_jacobi.txt");
    let d1 = svd(&fx["a1"]);
    let s1 = fx["s1"].as_slice();
    assert_eq!(d1.s.len(), 2);
    for (got, want) in d1.s.iter().zip(s1) {
        assert!((got - want).abs() < TOL, "σ(A1): got {got}, want {want}");
    }
    assert!(
        max_abs_diff(&d1.v, &fx["v1_abs"], f64::abs) < 1e-10,
        "|V(A1)| golden"
    );
    assert!(
        max_abs_diff(&d1.reconstruct(), &fx["a1"], |x| x) < 1e-12,
        "U·S·Vᵀ = A1"
    );

    let d2 = svd(&fx["a2"]);
    let s2 = fx["s2"].as_slice();
    assert_eq!(d2.s.len(), 2);
    for (got, want) in d2.s.iter().zip(s2) {
        assert!((got - want).abs() < TOL, "σ(A2): got {got}, want {want}");
    }
    assert!(
        max_abs_diff(&d2.reconstruct(), &fx["a2"], |x| x) < 1e-12,
        "U·S·Vᵀ = A2"
    );
}

#[test]
fn hessenberg_qr_eig_matches_fixtures() {
    let fx = load_fixture("eig_hessenberg.txt");
    for (mat, eigs) in [
        ("rot", "rot_eigs"),
        ("m22", "m22_eigs"),
        ("companion", "companion_eigs"),
    ] {
        let a = &fx[mat];
        let n = a.rows();
        let d = eig_real(a);
        assert_eq!(d.values.len(), n, "{mat}: eigenvalue count");
        let mut got: Vec<c64> = d.values.clone();
        got.sort_by(|x, y| (x.re, x.im).partial_cmp(&(y.re, y.im)).unwrap());
        let want = &fx[eigs];
        for (i, z) in got.iter().enumerate() {
            let (re, im) = (want[(i, 0)], want[(i, 1)]);
            assert!(
                (z.re - re).abs() < 1e-10 && (z.im - im).abs() < 1e-10,
                "{mat}: λ_{i} = {}+{}i, want {re}+{im}i",
                z.re,
                z.im
            );
        }
        // Residual check on the unsorted pairs: ‖A·w − λ·w‖∞ small.
        for (j, lambda) in d.values.iter().enumerate() {
            for i in 0..n {
                let mut aw = c64::new(0.0, 0.0);
                for k in 0..n {
                    aw += d.vectors[(k, j)] * a[(i, k)];
                }
                let resid = (aw - *lambda * d.vectors[(i, j)]).abs();
                assert!(resid < 1e-9, "{mat}: eigenpair {j} residual {resid}");
            }
        }
    }
}

#[test]
fn incremental_svd_matches_fixtures() {
    let fx = load_fixture("isvd_update.txt");
    let mut isvd = IncrementalSvd::new(&fx["block1"], 3);
    isvd.update(&fx["block2"]);
    assert_eq!(isvd.cols_seen(), 3);
    let want = fx["s"].as_slice();
    let s = isvd.s();
    assert!(s.len() >= want.len(), "rank at least {}", want.len());
    for (i, w) in want.iter().enumerate() {
        assert!((s[i] - w).abs() < 1e-10, "σ_{i}: got {}, want {w}", s[i]);
    }
    for extra in &s[want.len()..] {
        assert!(extra.abs() < 1e-10, "trailing σ ≈ 0, got {extra}");
    }
    assert!(
        max_abs_diff(&isvd.reconstruct(), &fx["full"], |x| x) < 1e-10,
        "ISVD reconstruction reproduces the streamed matrix"
    );

    let mut diag = IncrementalSvd::new(&fx["d1"], 2);
    diag.update(&fx["d2"]);
    let want = fx["ds"].as_slice();
    for (i, w) in want.iter().enumerate() {
        assert!((diag.s()[i] - w).abs() < 1e-12, "diag σ_{i}");
    }
}
