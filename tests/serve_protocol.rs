//! Protocol-robustness tests: hostile and malformed HTTP clients must get
//! typed 4xx/5xx responses — never a panic, never a wedged daemon. After
//! every abuse the daemon still answers `/healthz`.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use imrdmd_serve::{HttpLimits, ServeConfig, Server, ServerHandle};
use mrdmd_suite::prelude::*;
use mrdmd_suite::telemetry::write_snapshots_csv;

/// A daemon with deliberately tight limits so abuse is cheap to trigger:
/// 1 KiB headers, 4 KiB bodies, 300 ms slow-loris cutoff.
fn start_tight() -> (
    SocketAddr,
    ServerHandle,
    std::thread::JoinHandle<std::io::Result<()>>,
) {
    let cfg = ServeConfig {
        limits: HttpLimits {
            max_header_bytes: 1024,
            max_body_bytes: 4096,
        },
        read_timeout: Duration::from_millis(300),
        ..ServeConfig::default()
    };
    let (server, _, _) = Server::bind("127.0.0.1:0", cfg).unwrap();
    let addr = server.local_addr();
    let handle = server.handle();
    let worker = std::thread::spawn(move || server.run());
    (addr, handle, worker)
}

/// Sends raw bytes, returns whatever the daemon answers (possibly nothing).
fn raw(addr: SocketAddr, bytes: &[u8]) -> String {
    let mut conn = TcpStream::connect(addr).unwrap();
    conn.write_all(bytes).unwrap();
    let _ = conn.shutdown(std::net::Shutdown::Write);
    conn.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let mut out = Vec::new();
    let _ = conn.read_to_end(&mut out);
    String::from_utf8_lossy(&out).into_owned()
}

fn status_of(reply: &str) -> Option<u16> {
    reply.split_whitespace().nth(1)?.parse().ok()
}

fn get(addr: SocketAddr, path: &str) -> (u16, String) {
    let reply = raw(
        addr,
        format!("GET {path} HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n").as_bytes(),
    );
    (
        status_of(&reply).unwrap_or_else(|| panic!("no status in {reply:?}")),
        reply
            .split_once("\r\n\r\n")
            .map(|(_, b)| b.to_string())
            .unwrap_or_default(),
    )
}

fn assert_alive(addr: SocketAddr) {
    let (status, body) = get(addr, "/healthz");
    assert_eq!(status, 200, "daemon must survive the abuse: {body}");
}

#[test]
fn hostile_clients_get_typed_errors_never_panics() {
    let (addr, handle, worker) = start_tight();

    // Oversized declared body: refused with 413 before the body is read.
    let reply = raw(
        addr,
        b"POST /v1/t0/ingest HTTP/1.1\r\nHost: x\r\nContent-Length: 10000000\r\n\r\n",
    );
    assert_eq!(status_of(&reply), Some(413), "{reply:?}");
    assert_alive(addr);

    // Bad content-length: 400.
    let reply = raw(
        addr,
        b"POST /v1/t0/ingest HTTP/1.1\r\nHost: x\r\nContent-Length: banana\r\n\r\n",
    );
    assert_eq!(status_of(&reply), Some(400), "{reply:?}");
    assert_alive(addr);

    // POST without a content-length: 411.
    let reply = raw(addr, b"POST /v1/t0/ingest HTTP/1.1\r\nHost: x\r\n\r\n");
    assert_eq!(status_of(&reply), Some(411), "{reply:?}");
    assert_alive(addr);

    // Chunked transfer encoding: 501, we only speak identity.
    let reply = raw(
        addr,
        b"POST /v1/t0/ingest HTTP/1.1\r\nHost: x\r\nTransfer-Encoding: chunked\r\n\r\n",
    );
    assert_eq!(status_of(&reply), Some(501), "{reply:?}");
    assert_alive(addr);

    // Headers exceeding the cap: 431.
    let mut huge = b"GET /healthz HTTP/1.1\r\nHost: x\r\nX-Pad: ".to_vec();
    huge.extend(vec![b'a'; 2048]);
    huge.extend(b"\r\n\r\n");
    let reply = raw(addr, &huge);
    assert_eq!(status_of(&reply), Some(431), "{reply:?}");
    assert_alive(addr);

    // Truncated request: headers cut off mid-line, peer gone. Nothing to
    // answer — the daemon just drops the connection and stays up.
    let _ = raw(addr, b"GET /healthz HTT");
    assert_alive(addr);

    // Truncated body: content-length promises more than the peer sends.
    let _ = raw(
        addr,
        b"POST /v1/t0/ingest HTTP/1.1\r\nHost: x\r\nContent-Length: 50\r\n\r\nseries,0",
    );
    assert_alive(addr);

    // Garbage request line.
    let reply = raw(addr, b"\x16\x03\x01\x02\x00 tls handshake lol\r\n\r\n");
    assert_eq!(status_of(&reply), Some(400), "{reply:?}");
    assert_alive(addr);

    handle.shutdown();
    worker.join().unwrap().unwrap();
}

#[test]
fn slow_loris_is_cut_off_with_408() {
    let (addr, handle, worker) = start_tight();

    // Drip a few header bytes, then stall past the read timeout while the
    // connection stays open — the classic slow-loris hold.
    let mut conn = TcpStream::connect(addr).unwrap();
    conn.write_all(b"GET /healthz HTTP/1.1\r\nHost: ").unwrap();
    std::thread::sleep(Duration::from_millis(600));
    conn.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let mut out = Vec::new();
    let _ = conn.read_to_end(&mut out);
    let reply = String::from_utf8_lossy(&out).into_owned();
    assert_eq!(status_of(&reply), Some(408), "{reply:?}");
    assert_alive(addr);

    handle.shutdown();
    worker.join().unwrap().unwrap();
}

#[test]
fn routing_errors_are_typed() {
    let (addr, handle, worker) = start_tight();

    // Unknown tenant on a read route: 404.
    let (status, body) = get(addr, "/v1/nobody/health");
    assert_eq!(status, 404, "{body}");
    assert!(body.contains("error"), "{body}");

    // Invalid tenant name (path metacharacters): 400.
    let (status, _) = get(addr, "/v1/bad!name/health");
    assert_eq!(status, 400);
    // Over-long tenant name: 400.
    let long = "t".repeat(65);
    let (status, _) = get(addr, &format!("/v1/{long}/health"));
    assert_eq!(status, 400);

    // Wrong method on a known route: 405.
    let reply = raw(
        addr,
        b"DELETE /v1/t0/ingest HTTP/1.1\r\nHost: x\r\nContent-Length: 0\r\n\r\n",
    );
    assert_eq!(status_of(&reply), Some(405), "{reply:?}");
    let reply = raw(
        addr,
        b"POST /metrics HTTP/1.1\r\nHost: x\r\nContent-Length: 0\r\n\r\n",
    );
    assert_eq!(status_of(&reply), Some(405), "{reply:?}");

    // Unknown path: 404.
    let (status, _) = get(addr, "/v2/anything");
    assert_eq!(status, 404);

    // Bad query values: 400.
    let mini = Mat::from_fn(3, 24, |i, j| (i as f64 + 1.0) * (j as f64 * 0.1).sin());
    let mut csv = Vec::new();
    write_snapshots_csv(&mut csv, &mini, 0).unwrap();
    let mut req = format!(
        "POST /v1/t0/ingest HTTP/1.1\r\nHost: x\r\nContent-Type: text/csv\r\nContent-Length: {}\r\n\r\n",
        csv.len()
    )
    .into_bytes();
    req.extend(&csv);
    let reply = raw(addr, &req);
    assert_eq!(status_of(&reply), Some(200), "{reply:?}");
    let (status, _) = get(addr, "/v1/t0/forecast?h=0");
    assert_eq!(status, 400);
    let (status, _) = get(addr, "/v1/t0/forecast?h=abc");
    assert_eq!(status, 400);
    let (status, _) = get(addr, "/v1/t0/reconstruct?t0=9999&t1=10000");
    assert_eq!(status, 400);

    // Empty and garbage ingest bodies: 400, not a poisoned shard.
    let reply = raw(
        addr,
        b"POST /v1/t0/ingest HTTP/1.1\r\nHost: x\r\nContent-Length: 9\r\n\r\nnot a csv",
    );
    assert_eq!(status_of(&reply), Some(400), "{reply:?}");
    let (status, body) = get(addr, "/v1/t0/health");
    assert_eq!(
        status, 200,
        "shard must still serve after bad bodies: {body}"
    );

    // Out-of-order batch: 409 with both clocks in the message.
    let mut req = format!(
        "POST /v1/t0/ingest HTTP/1.1\r\nHost: x\r\nContent-Type: text/csv\r\nContent-Length: {}\r\n\r\n",
        csv.len()
    )
    .into_bytes();
    req.extend(&csv);
    let reply = raw(addr, &req);
    assert_eq!(status_of(&reply), Some(409), "{reply:?}");

    assert_alive(addr);
    handle.shutdown();
    worker.join().unwrap().unwrap();
}

#[test]
fn metrics_track_protocol_abuse() {
    let (addr, handle, worker) = start_tight();

    let _ = raw(
        addr,
        b"POST /x HTTP/1.1\r\nHost: x\r\nContent-Length: nope\r\n\r\n",
    );
    let _ = get(addr, "/v1/nobody/health");

    let (status, metrics) = get(addr, "/metrics");
    assert_eq!(status, 200);
    for series in [
        "# TYPE serve_requests counter",
        "serve_protocol_errors",
        "serve_responses_4xx",
        "serve_request_ns_bucket{le=",
    ] {
        assert!(metrics.contains(series), "missing `{series}` in /metrics");
    }

    handle.shutdown();
    worker.join().unwrap().unwrap();
}
