//! Numerical-fault robustness (fallible-core PR, satellite 3).
//!
//! The library contract under test: no finite input panics the numerical
//! core, forced solver non-convergence degrades the affected subtree
//! instead of killing the stream, health state survives checkpoints
//! bitwise, and degraded operation stays bitwise-deterministic across
//! thread counts.
//!
//! The fail points in `hpc_linalg::failpoint` are process-global, so every
//! test here — including the ones that never arm them — serialises through
//! one mutex, and armed tests disarm before releasing it.

use mrdmd_suite::core::imrdmd::ROOT_STALE_AFTER;
use mrdmd_suite::linalg::{failpoint, try_eig_real, try_lstsq_complex, Mat};
use mrdmd_suite::prelude::*;
use std::sync::{Mutex, MutexGuard};

static FAILPOINT_LOCK: Mutex<()> = Mutex::new(());

/// Serialises a test against the process-global fail points and guarantees
/// they are disarmed both on entry and on drop (even across a panic).
struct FailpointGuard(#[allow(dead_code)] MutexGuard<'static, ()>);

impl FailpointGuard {
    fn acquire() -> FailpointGuard {
        let g = FAILPOINT_LOCK
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        failpoint::disarm_all();
        FailpointGuard(g)
    }
}

impl Drop for FailpointGuard {
    fn drop(&mut self) {
        failpoint::disarm_all();
    }
}

const TAU: f64 = std::f64::consts::TAU;

fn signal(p: usize, t: usize) -> Mat {
    Mat::from_fn(p, t, |i, j| {
        let x = i as f64 / p as f64;
        let tt = j as f64;
        (TAU * 0.01 * tt + 2.0 * x).sin()
            + 0.4 * (TAU * 0.3 * tt + 4.0 * x).cos()
            + 0.02 * (TAU * 5.0 * tt + 9.0 * x).sin()
    })
}

fn cfg(n_threads: usize) -> IMrDmdConfig {
    IMrDmdConfig {
        mr: MrDmdConfig {
            dt: 1.0,
            max_levels: 4,
            max_cycles: 2,
            rank: RankSelection::Fixed(6),
            min_window: 16,
            n_threads,
            ..MrDmdConfig::default()
        },
        ..IMrDmdConfig::default()
    }
}

fn tmp(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("imrdmd-numerical-faults");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

/// Degenerate and ill-conditioned inputs flow through the `try_` APIs as
/// values — `Ok` or a typed error, never a panic.
#[test]
fn pathological_matrices_never_panic() {
    let _g = FailpointGuard::acquire();

    // Defective (Jordan-block) matrix: one eigenvalue, one eigenvector.
    let jordan = Mat::from_fn(4, 4, |i, j| {
        if i == j {
            2.0
        } else if j == i + 1 {
            1.0
        } else {
            0.0
        }
    });
    let _ = try_eig_real(&jordan);

    // Tightly clustered eigenvalues: diag(1, 1+ε, 1+2ε, …) under rotation.
    let n = 6;
    let clustered = Mat::from_fn(n, n, |i, j| {
        let d = if i == j { 1.0 + i as f64 * 1e-14 } else { 0.0 };
        d + 1e-14 * ((i * n + j) as f64).sin()
    });
    let _ = try_eig_real(&clustered);

    // Hilbert matrix (κ ≈ 1/ε at n = 12): eig, least squares, DMD.
    let hilbert = Mat::from_fn(12, 12, |i, j| 1.0 / (i + j + 1) as f64);
    let _ = try_eig_real(&hilbert);
    let ch = CMat::from_real(&hilbert);
    let rhs: Vec<c64> = (0..12).map(|i| c64::new(1.0 + i as f64, 0.0)).collect();
    let _ = try_lstsq_complex(&ch, &rhs);
    let _ = Dmd::try_fit(&hilbert, &DmdConfig::default());

    // Rank-0 and rank-1 snapshot batches.
    let zeros = Mat::zeros(8, 24);
    let _ = Dmd::try_fit(&zeros, &DmdConfig::default());
    let rank1 = Mat::from_fn(8, 24, |i, _| (i as f64 * 0.3).sin());
    let _ = Dmd::try_fit(&rank1, &DmdConfig::default());
    let const_cols = Mat::from_fn(8, 24, |_, j| j as f64);
    let _ = Dmd::try_fit(&const_cols, &DmdConfig::default());

    // The streaming tree absorbs a rank-collapsing batch without dying.
    let data = signal(8, 512);
    let mut model = IMrDmd::fit(&data, &cfg(1));
    model.partial_fit(&Mat::from_fn(8, 64, |_, _| 1.0));
    model.partial_fit(&Mat::zeros(8, 64));
    assert_eq!(model.n_steps(), 640);
    assert!(model.reconstruct().as_slice().iter().all(|v| v.is_finite()));
}

/// The acceptance criterion: forced eigensolver non-convergence leaves
/// `try_partial_fit` returning `Ok`, with the hit subtrees reported as
/// degraded in `health()` and the stream still advancing.
#[test]
fn forced_nonconvergence_degrades_instead_of_erroring() {
    let _g = FailpointGuard::acquire();
    let data = signal(12, 768);
    let mut model = IMrDmd::fit(&data.cols_range(0, 512), &cfg(1));
    assert!(model.health().all_healthy());
    let modes_before = model.n_modes();

    failpoint::arm_eig_nonconvergence(usize::MAX);
    let mut guard = IngestGuard::new(GapPolicy::Interpolate, 12);
    let report = model
        .try_partial_fit(&data.cols_range(512, 640), &mut guard)
        .expect("degraded operation is not an error");
    failpoint::disarm_all();

    assert!(report.new_faults > 0, "{report:?}");
    let h = model.health();
    assert!(!h.root.is_healthy(), "{h:?}");
    assert_eq!(h.root.label(), "degraded");
    assert!(h.root.cause().is_some());
    assert!(h.coverage < 1.0, "{h:?}");
    assert!(h.last_error.is_some());
    // The previous root modes keep serving: nothing was thrown away.
    assert_eq!(model.n_modes(), modes_before);
    assert_eq!(model.n_steps(), 640);
    assert!(model.reconstruct().as_slice().iter().all(|v| v.is_finite()));

    // A healthy batch heals the root and keeps streaming.
    model.partial_fit(&data.cols_range(640, 768));
    assert!(model.root_health().is_healthy());
    assert_eq!(model.n_steps(), 768);
}

/// SubtreeHealth transitions: Healthy → Degraded on the first failed root
/// solve, Stale after `ROOT_STALE_AFTER` consecutive failures (with the
/// original onset step preserved), and back to Healthy on recovery.
#[test]
fn root_health_walks_degraded_to_stale_and_recovers() {
    let _g = FailpointGuard::acquire();
    let data = signal(8, 1024);
    let mut model = IMrDmd::fit(&data.cols_range(0, 512), &cfg(1));
    assert_eq!(model.root_health().label(), "healthy");

    failpoint::arm_eig_nonconvergence(usize::MAX);
    let mut lo = 512;
    let mut onset = None;
    for k in 1..=ROOT_STALE_AFTER {
        model.partial_fit(&data.cols_range(lo, lo + 64));
        lo += 64;
        let h = model.root_health().clone();
        match (k, &h) {
            (k, SubtreeHealth::Degraded { since, .. }) if k < ROOT_STALE_AFTER => {
                let since = *since;
                *onset.get_or_insert(since) = since;
                assert_eq!(onset, Some(since), "onset must not move while failing");
            }
            (k, SubtreeHealth::Stale { since, cause }) if k == ROOT_STALE_AFTER => {
                assert_eq!(Some(*since), onset, "stale keeps the degraded onset");
                assert!(!cause.is_empty());
            }
            _ => panic!("unexpected health after failure {k}: {h:?}"),
        }
    }
    failpoint::disarm_all();

    model.partial_fit(&data.cols_range(lo, lo + 64));
    assert!(
        model.root_health().is_healthy(),
        "{:?}",
        model.root_health()
    );
    assert!(model.health().root.is_healthy());
}

/// Kill-and-resume: a checkpoint taken while degraded restores the entire
/// model — health state included — bitwise.
#[test]
fn degraded_health_survives_checkpoint_bitwise() {
    let _g = FailpointGuard::acquire();
    let data = signal(8, 704);
    let mut model = IMrDmd::fit(&data.cols_range(0, 512), &cfg(1));
    failpoint::arm_eig_nonconvergence(usize::MAX);
    model.partial_fit(&data.cols_range(512, 576));
    failpoint::disarm_all();
    assert!(!model.root_health().is_healthy());
    assert!(!model.fit_faults().is_empty());

    let path = tmp("degraded.ckpt");
    save_checkpoint(&model, &path).unwrap();
    let restored = load_checkpoint(&path).unwrap();

    let before = serde_json::to_string(&model).unwrap();
    let after = serde_json::to_string(&restored).unwrap();
    assert_eq!(before, after, "checkpoint round-trip must be bitwise");
    assert_eq!(
        serde_json::to_string(&model.health()).unwrap(),
        serde_json::to_string(&restored.health()).unwrap()
    );

    // Both copies absorb the identical continuation identically.
    let mut restored = restored;
    model.partial_fit(&data.cols_range(576, 704));
    restored.partial_fit(&data.cols_range(576, 704));
    assert_eq!(
        serde_json::to_string(&model).unwrap(),
        serde_json::to_string(&restored).unwrap()
    );
}

/// Degraded operation keeps the worker pool's determinism contract: with a
/// sticky (thread-order-independent) fail point armed, the fault log,
/// health snapshot, and reconstruction are bit-for-bit identical for
/// n_threads ∈ {1, 2, 4, 8}.
#[test]
fn degraded_state_is_bitwise_deterministic_across_thread_counts() {
    let _g = FailpointGuard::acquire();
    let data = signal(16, 768);
    let run = |n_threads: usize| -> (String, String, Vec<u64>) {
        let mut model = IMrDmd::fit(&data.cols_range(0, 512), &cfg(n_threads));
        failpoint::arm_eig_nonconvergence(usize::MAX);
        model.partial_fit(&data.cols_range(512, 768));
        failpoint::disarm_all();
        let health = serde_json::to_string(&model.health()).unwrap();
        // The config serialises its own n_threads knob; pin it so the state
        // comparison sees only numerical content.
        model.set_n_threads(1);
        let state = serde_json::to_string(&model).unwrap();
        let rec: Vec<u64> = model
            .reconstruct()
            .as_slice()
            .iter()
            .map(|v| v.to_bits())
            .collect();
        (health, state, rec)
    };
    let reference = run(1);
    assert!(reference.0.contains("egraded"), "{}", reference.0);
    for n in [2, 4, 8] {
        let got = run(n);
        assert_eq!(got.0, reference.0, "health diverged at n_threads = {n}");
        assert_eq!(got.2, reference.2, "reconstruction diverged at n = {n}");
        assert_eq!(got.1, reference.1, "model state diverged at n = {n}");
    }
}

/// The telemetry injector's pathological mode (rank-collapsing batches)
/// streams end to end through the guarded ingest: every batch is absorbed,
/// nothing panics, and the health surface stays finite and readable.
#[test]
fn pathological_stream_batches_keep_streaming() {
    let _g = FailpointGuard::acquire();
    let mut machine = theta().scaled(16);
    machine.series_per_node = 1;
    let scenario = Scenario::sc_log(machine, 1000, 17);
    let faults = FaultConfig {
        seed: 31,
        pathological_prob: 1.0,
        ..FaultConfig::none(31)
    };
    let mut stream = FaultInjector::new(ChunkStream::new(&scenario, 0, 1000, 125), faults);
    let first = stream.next().unwrap();
    let mut guard = IngestGuard::new(GapPolicy::Interpolate, 16);
    let c = IMrDmdConfig {
        mr: MrDmdConfig {
            dt: scenario.dt(),
            max_levels: 4,
            rank: RankSelection::Svht,
            ..MrDmdConfig::default()
        },
        ..IMrDmdConfig::default()
    };
    let mut model = IMrDmd::fit(&first, &c);
    for batch in stream.by_ref() {
        model
            .try_partial_fit(&batch, &mut guard)
            .expect("rank-collapsed batches must not error the stream");
    }
    assert_eq!(model.n_steps(), 1000);
    assert!(stream
        .events()
        .iter()
        .all(|e| matches!(e, FaultEvent::PathologicalBatch { .. })));
    assert_eq!(stream.events().len(), 8);
    let h = model.health();
    assert!(h.coverage >= 0.0 && h.coverage <= 1.0);
    assert!(h.solver.isvd_drift.is_finite());
    assert!(model.reconstruct().as_slice().iter().all(|v| v.is_finite()));
    // The summary renders without surprises either way.
    assert!(h.summary().contains("nodes"), "{}", h.summary());
}
