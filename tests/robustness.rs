//! Failure-injection and degenerate-input robustness: the pipeline must
//! stay finite and well-behaved on the pathological data a production log
//! stream will eventually deliver.

use mrdmd_suite::prelude::*;

fn cfg(dt: f64, levels: usize) -> IMrDmdConfig {
    IMrDmdConfig {
        mr: MrDmdConfig {
            dt,
            max_levels: levels,
            max_cycles: 2,
            rank: RankSelection::Svht,
            ..MrDmdConfig::default()
        },
        ..IMrDmdConfig::default()
    }
}

/// Baseline healthy signal used as the substrate for injections.
fn healthy(p: usize, t: usize) -> Mat {
    Mat::from_fn(p, t, |i, j| {
        let x = i as f64 / p as f64;
        let tt = j as f64;
        45.0 + 3.0 * (0.01 * tt + 2.0 * x).sin() + 0.5 * (0.08 * tt + 5.0 * x).cos()
    })
}

#[test]
fn dead_sensor_constant_row() {
    // A sensor that flatlines (dropout reporting a constant).
    let mut data = healthy(16, 512);
    for v in data.row_mut(5) {
        *v = 0.0;
    }
    let model = IMrDmd::fit(&data, &cfg(1.0, 4));
    let rec = model.reconstruct();
    assert!(rec.as_slice().iter().all(|v| v.is_finite()));
    // The dead row reconstructs near zero, not garbage.
    let dead_norm: f64 = rec.row(5).iter().map(|v| v * v).sum::<f64>().sqrt();
    assert!(dead_norm < 10.0, "dead row norm {dead_norm}");
}

#[test]
fn all_sensors_identical() {
    // Perfectly correlated sensors: spatial rank 1.
    let data = Mat::from_fn(12, 400, |_, j| 40.0 + (0.02 * j as f64).sin());
    let model = IMrDmd::fit(&data, &cfg(1.0, 4));
    let rec = model.reconstruct();
    assert!(rec.as_slice().iter().all(|v| v.is_finite()));
    let rel = rec.fro_dist(&data) / data.fro_norm();
    assert!(rel < 0.1, "rank-1 stream should reconstruct well: {rel}");
}

#[test]
fn extreme_spike_does_not_poison_the_tree() {
    let mut data = healthy(16, 512);
    // A single-sample 10⁶ spike (cosmic-ray style sensor glitch).
    data[(3, 200)] = 1e6;
    let model = IMrDmd::fit(&data, &cfg(1.0, 4));
    let rec = model.reconstruct();
    assert!(rec.as_slice().iter().all(|v| v.is_finite()));
    // Rows far from the glitch stay reasonable.
    let clean = healthy(16, 512);
    let err_far: f64 = rec
        .row(10)
        .iter()
        .zip(clean.row(10))
        .map(|(&a, &b)| (a - b) * (a - b))
        .sum::<f64>()
        .sqrt();
    let base: f64 = clean.row(10).iter().map(|v| v * v).sum::<f64>().sqrt();
    assert!(
        err_far < base,
        "glitch contaminated unrelated sensors: {err_far} vs {base}"
    );
}

#[test]
fn tiny_streams_and_windows() {
    // The smallest stream the API accepts.
    let data = healthy(3, 16);
    let model = IMrDmd::fit(&data, &cfg(1.0, 2));
    assert!(model.reconstruct().as_slice().iter().all(|v| v.is_finite()));
    // Single-sensor stream.
    let data = healthy(1, 256);
    let model = IMrDmd::fit(&data, &cfg(1.0, 3));
    assert_eq!(model.n_rows(), 1);
    assert!(model.reconstruct().as_slice().iter().all(|v| v.is_finite()));
}

#[test]
fn stall_and_fan_degradation_anomalies_survive_pipeline() {
    let mut machine = theta().scaled(24);
    machine.series_per_node = 1;
    let jobs = JobLog::synthesize(24, 600, 5, 3);
    let anomalies = vec![
        Anomaly::Stall {
            node: 3,
            start: 100,
            end: 400,
        },
        Anomaly::FanDegradation {
            node: 9,
            start: 50,
            slope: 0.02,
        },
        Anomaly::Overheat {
            node: 15,
            start: 200,
            end: 600,
            delta: 40.0,
        },
    ];
    let scenario = Scenario::new(machine, Profile::ScLog, 4, jobs, anomalies);
    let data = scenario.generate(0, 600);
    let model = IMrDmd::fit(&data, &cfg(scenario.dt(), 4));
    let mags = row_mode_magnitudes(model.nodes(), &BandFilter::all(), 24);
    assert!(mags.iter().all(|m| m.is_finite()));
    // The 40 °C overheat ranks among the top magnitudes (heavy jobs can
    // legitimately compete, but not displace it from the top 3).
    let mut ranked: Vec<usize> = (0..24).collect();
    ranked.sort_by(|&a, &b| mags[b].partial_cmp(&mags[a]).unwrap());
    assert!(
        ranked[..3].contains(&15),
        "overheat node must rank top-3; ranking {:?}",
        &ranked[..5]
    );
}

#[test]
fn huge_scale_and_tiny_scale_data() {
    // 1e9-scale readings.
    let big = Mat::from_fn(8, 256, |i, j| 1e9 * (1.0 + 0.01 * ((i + j) as f64).sin()));
    let model = IMrDmd::fit(&big, &cfg(1.0, 3));
    assert!(model.reconstruct().as_slice().iter().all(|v| v.is_finite()));
    // 1e-9-scale readings.
    let small = Mat::from_fn(8, 256, |i, j| 1e-9 * ((0.05 * j as f64 + i as f64).sin()));
    let model = IMrDmd::fit(&small, &cfg(1.0, 3));
    assert!(model.reconstruct().as_slice().iter().all(|v| v.is_finite()));
}

#[test]
fn zero_stream_is_inert() {
    let data = Mat::zeros(8, 256);
    let model = IMrDmd::fit(&data, &cfg(1.0, 3));
    assert_eq!(model.reconstruct().fro_norm(), 0.0);
    let spectrum = mode_spectrum(model.nodes());
    assert!(spectrum.iter().all(|p| p.power >= 0.0));
}

#[test]
fn regime_change_mid_stream() {
    // The facility jumps 30 °C at T/2 — the stream must absorb it without
    // non-finite output, and drift must flag it.
    let data = Mat::from_fn(12, 512, |i, j| {
        let base = if j < 256 { 40.0 } else { 70.0 };
        base + ((0.02 * j as f64) + i as f64 * 0.3).sin()
    });
    let mut c = cfg(1.0, 4);
    c.drift_threshold = Some(1.0);
    let mut model = IMrDmd::fit(&data.cols_range(0, 256), &c);
    let report = model.partial_fit(&data.cols_range(256, 512));
    assert!(
        report.drift > 1.0,
        "regime change must register as drift: {}",
        report.drift
    );
    assert!(model.is_stale());
    assert!(model.reconstruct().as_slice().iter().all(|v| v.is_finite()));
}
