//! End-to-end pipeline integration: telemetry generation → streaming
//! I-mrDMD → spectrum → baseline z-scores → rack visualization, with the
//! injected ground truth validating each stage.

use mrdmd_suite::prelude::*;

fn small_cfg(dt: f64) -> IMrDmdConfig {
    IMrDmdConfig {
        mr: MrDmdConfig {
            dt,
            max_levels: 4,
            max_cycles: 2,
            rank: RankSelection::Svht,
            ..MrDmdConfig::default()
        },
        keep_history: true,
        ..IMrDmdConfig::default()
    }
}

/// A scenario with one strong, known overheat anomaly.
fn scenario_with_overheat(n_nodes: usize, total: usize) -> (Scenario, usize) {
    let mut machine = theta().scaled(n_nodes);
    machine.series_per_node = 1;
    let jobs = JobLog::synthesize(n_nodes, total, 4, 5);
    let hot_node = n_nodes / 2;
    // Well above job heat so the anomaly dominates the magnitude ranking.
    let anomalies = vec![Anomaly::Overheat {
        node: hot_node,
        start: total / 8,
        end: total,
        delta: 35.0,
    }];
    (
        Scenario::new(machine, Profile::ScLog, 5, jobs, anomalies),
        hot_node,
    )
}

#[test]
fn stream_fit_detects_injected_overheat() {
    let (scenario, hot_node) = scenario_with_overheat(48, 640);
    let cfg = small_cfg(scenario.dt());
    let mut stream = ChunkStream::new(&scenario, 0, 640, 160);
    let first = stream.next().unwrap();
    let mut model = IMrDmd::fit(&first, &cfg);
    for batch in stream {
        model.partial_fit(&batch);
    }
    assert_eq!(model.n_steps(), 640);

    let data = scenario.generate(0, 640);
    let mags = row_mode_magnitudes(model.nodes(), &BandFilter::all(), data.rows());
    // Baseline: middle half by magnitude (robust to the synthetic regime).
    let mut idx: Vec<usize> = (0..mags.len()).collect();
    idx.sort_by(|&a, &b| mags[a].partial_cmp(&mags[b]).unwrap());
    let baseline = idx[mags.len() / 4..3 * mags.len() / 4].to_vec();
    let z = ZScores::from_baseline(&mags, &baseline);
    // The overheated node must classify as anomalous and rank near the top.
    let mut ranked: Vec<usize> = (0..z.z.len()).collect();
    ranked.sort_by(|&a, &b| z.z[b].partial_cmp(&z.z[a]).unwrap());
    let rank = ranked.iter().position(|&n| n == hot_node).unwrap();
    assert!(
        rank < z.z.len() / 6 + 1,
        "overheat node ranked {rank} of {}",
        z.z.len()
    );
    assert!(
        z.z[hot_node] > 1.5,
        "overheat node z-score {}",
        z.z[hot_node]
    );
}

#[test]
fn rack_view_renders_pipeline_output() {
    let (scenario, hot_node) = scenario_with_overheat(32, 320);
    let cfg = small_cfg(scenario.dt());
    let data = scenario.generate(0, 320);
    let model = IMrDmd::fit(&data, &cfg);
    let mags = row_mode_magnitudes(model.nodes(), &BandFilter::all(), data.rows());
    let baseline: Vec<usize> = (0..8).collect();
    let z = ZScores::from_baseline(&mags, &baseline);
    let hw = HwLog::synthesize(32, 320, scenario.anomalies(), 1.0, 5);
    let outlined = hw.nodes_with_any(0, 320);
    // Highlight a node that is not outlined (outlines take precedence).
    let highlight = (0..32)
        .find(|n| !outlined.contains(n) && *n != hot_node)
        .unwrap();
    let view = RackView::new(scenario.machine())
        .with_values(&z.z)
        .with_outlined(outlined.iter().copied())
        .with_highlighted([highlight]);
    let svg = view.to_svg();
    assert!(svg.contains("</svg>"));
    assert!(svg.contains("#cc0000"), "highlight colour must appear");
    let ascii = view.to_ascii();
    assert_eq!(
        ascii.lines().count(),
        1 + scenario.machine().layout.rows.len()
    );
}

#[test]
fn spectrum_flows_from_streamed_model() {
    let (scenario, _) = scenario_with_overheat(32, 320);
    let cfg = small_cfg(scenario.dt());
    let mut model = IMrDmd::fit(&scenario.generate(0, 160), &cfg);
    model.partial_fit(&scenario.generate(160, 320));
    let pts = mode_spectrum(model.nodes());
    assert!(!pts.is_empty());
    assert!(pts.iter().all(|p| p.power >= 0.0 && p.frequency_hz >= 0.0));
    assert!(pts
        .iter()
        .all(|p| p.frequency_hz.is_finite() && p.power.is_finite()));
    // Band filtering composes.
    let f_max = pts.iter().map(|p| p.frequency_hz).fold(0.0f64, f64::max);
    let kept = BandFilter::band(0.0, f_max).apply(&pts);
    assert_eq!(kept.len(), pts.len());
}

#[test]
fn chunking_does_not_change_the_data_or_final_timeline() {
    let (scenario, _) = scenario_with_overheat(24, 480);
    let cfg = small_cfg(scenario.dt());
    // Two different chunkings of the same stream.
    let fit_with_chunks = |chunk: usize| -> IMrDmd {
        let mut stream = ChunkStream::new(&scenario, 0, 480, chunk);
        let first = stream.next().unwrap();
        let mut model = IMrDmd::fit(&first, &cfg);
        for batch in stream {
            model.partial_fit(&batch);
        }
        model
    };
    let a = fit_with_chunks(240);
    let b = fit_with_chunks(120);
    assert_eq!(a.n_steps(), b.n_steps());
    // Both reconstructions approximate the same data comparably well: the
    // trees differ (different split points), the quality must not collapse.
    let data = scenario.generate(0, 480);
    let ea = a.reconstruct().fro_dist(&data) / data.fro_norm();
    let eb = b.reconstruct().fro_dist(&data) / data.fro_norm();
    assert!(ea < 0.8 && eb < 0.8, "chunked errors {ea} vs {eb}");
}

#[test]
fn job_log_alignment_is_consistent() {
    let (scenario, _) = scenario_with_overheat(40, 320);
    let jobs = scenario.job_log();
    for project in jobs.projects() {
        let nodes = jobs.project_nodes(&project);
        for &n in &nodes {
            assert!(n < 40);
        }
        // Every project node is covered by at least one job of the project.
        for &n in &nodes {
            assert!(jobs.jobs_on_node(n).any(|j| j.project == project));
        }
    }
}

#[test]
fn recompute_resets_drift_and_preserves_quality() {
    let (scenario, _) = scenario_with_overheat(24, 480);
    let mut cfg = small_cfg(scenario.dt());
    cfg.drift_threshold = Some(1e-9);
    let mut model = IMrDmd::fit(&scenario.generate(0, 240), &cfg);
    model.partial_fit(&scenario.generate(240, 480));
    assert!(model.is_stale());
    let before = model.reconstruct().fro_dist(&scenario.generate(0, 480));
    model.recompute();
    assert!(!model.is_stale());
    let after = model.reconstruct().fro_dist(&scenario.generate(0, 480));
    // A batch refit must not be (much) worse than the incremental tree.
    assert!(
        after <= before * 1.5 + 1e-9,
        "refit error {after} vs incremental {before}"
    );
}
