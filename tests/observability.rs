//! Observability integration tests (tracing/metrics PR).
//!
//! The metrics registry is process-global, so every test here serialises
//! through one mutex and restores the default observer state (enabled,
//! monotonic clock, counters zeroed, failpoints disarmed) on drop. Tests
//! early-return when the `obs` cargo feature is compiled out — the reading
//! API still exists there, but every counter is pinned at zero.

use mrdmd_suite::core::obs;
use mrdmd_suite::core::obs::{HistogramEntry, MetricEntry};
use mrdmd_suite::linalg::failpoint;
use mrdmd_suite::prelude::*;
use mrdmd_suite::telemetry::write_snapshots_csv;
use std::collections::HashSet;
use std::fs;
use std::path::PathBuf;
use std::sync::{Mutex, MutexGuard};

const TAU: f64 = std::f64::consts::TAU;

static OBS_LOCK: Mutex<()> = Mutex::new(());

/// Serialises a test against the process-global metrics/failpoint/clock
/// state and restores the defaults on drop (even across a panic).
struct ObsGuard(#[allow(dead_code)] MutexGuard<'static, ()>);

impl ObsGuard {
    fn acquire() -> ObsGuard {
        let g = OBS_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        failpoint::disarm_all();
        Observer::enabled().install();
        obs::reset();
        ObsGuard(g)
    }
}

impl Drop for ObsGuard {
    fn drop(&mut self) {
        failpoint::disarm_all();
        Observer::enabled().install();
        obs::reset();
    }
}

/// Deterministic multiscale telemetry-like signal.
fn signal(p: usize, t: usize, dt: f64) -> Mat {
    Mat::from_fn(p, t, |i, j| {
        let x = i as f64 / p as f64;
        let tt = j as f64 * dt;
        50.0 + 4.0 * (TAU * tt / 9000.0 + 2.0 * x).sin()
            + 1.5 * (TAU * tt / 900.0 + 5.0 * x).cos()
            + 0.4 * (TAU * tt / 90.0 + 9.0 * x).sin()
    })
}

/// Streaming config routed through the builder-first API.
fn cfg(dt: f64, n_threads: usize) -> IMrDmdConfig {
    let mr = MrDmdConfig::builder()
        .dt(dt)
        .max_levels(4)
        .max_cycles(2)
        .rank(RankSelection::Fixed(6))
        .min_window(16)
        .n_threads(n_threads)
        .build()
        .unwrap();
    IMrDmdConfig::builder()
        .mr(mr)
        .isvd_max_rank(24)
        .build()
        .unwrap()
}

fn bits(m: &Mat) -> Vec<u64> {
    m.as_slice().iter().map(|v| v.to_bits()).collect()
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("imrdmd-observability");
    fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

/// Under the fake clock (zero step) the deterministic metric subset —
/// every counter and gauge except the scheduler-dependent `pool.*` family —
/// is identical at every thread count, and the round histogram observes
/// the same number of zero-duration spans.
#[test]
fn deterministic_metrics_across_thread_counts() {
    let _g = ObsGuard::acquire();
    if !obs::is_enabled() {
        return;
    }
    let dt = 1.0;
    let data = signal(8, 512, dt);
    let mut reference: Option<Vec<(String, f64)>> = None;
    for &n in &[1usize, 2, 4, 8] {
        obs::reset();
        Observer::enabled().with_fake_clock(0, 0).install();
        let c = cfg(dt, n);
        let mut m = IMrDmd::fit(&data.cols_range(0, 256), &c);
        for k in 0..4 {
            m.partial_fit(&data.cols_range(256 + 64 * k, 256 + 64 * (k + 1)));
        }
        let snap = MetricsSnapshot::capture();
        assert_eq!(snap.counter("round.count"), Some(4), "threads {n}");
        assert!(snap.counter("gemm.calls").unwrap() > 0, "threads {n}");
        assert!(snap.counter("isvd.updates").unwrap() > 0, "threads {n}");
        // Zero-step fake clock: the spans fired but observed no time.
        let h = snap.histogram("round.ns").unwrap();
        assert_eq!((h.count, h.sum_ns), (4, 0), "threads {n}");
        let subset = snap.deterministic_subset();
        assert!(subset.iter().all(|(name, _)| !name.starts_with("pool.")));
        match &reference {
            None => reference = Some(subset),
            Some(r) => assert_eq!(r, &subset, "thread count {n} diverged"),
        }
    }
    Observer::enabled().install();
}

/// The ingest counters agree exactly with the fault injector's ground-truth
/// event log: every corrupted cell is one repaired cell, nothing more.
#[test]
fn ingest_counters_match_fault_injector_ground_truth() {
    let _g = ObsGuard::acquire();
    if !obs::is_enabled() {
        return;
    }
    let n_nodes = 16;
    let total = 800;
    let chunk = 100;
    let mut machine = theta().scaled(n_nodes);
    machine.series_per_node = 1;
    let scenario = Scenario::sc_log(machine, total, 23);
    let faults = FaultConfig {
        seed: 515,
        drop_prob: 0.004,
        nan_run_prob: 0.6,
        nan_run_max_len: 12,
        sensor_dropout_prob: 0.25,
        duplicate_prob: 0.0,
        pathological_prob: 0.0,
    };
    let mut stream = FaultInjector::new(ChunkStream::new(&scenario, 0, total, chunk), faults);
    let batches: Vec<Mat> = (&mut stream).collect();

    // Ground truth two ways: the union of event-corrupted cells, and the
    // non-finite cells actually present in the delivered batches.
    let mut corrupted: HashSet<(usize, usize)> = HashSet::new();
    for k in 0..batches.len() {
        for (row, col) in stream.corrupted_cells(k * chunk, chunk) {
            corrupted.insert((row, k * chunk + col));
        }
    }
    let nan_cells: usize = batches
        .iter()
        .map(|b| b.as_slice().iter().filter(|v| !v.is_finite()).count())
        .sum();
    assert_eq!(corrupted.len(), nan_cells, "event log covers every hole");
    assert!(
        nan_cells > 0,
        "test premise: the injector corrupted the stream"
    );

    obs::reset();
    let c = cfg(scenario.dt(), 0);
    let mut guard = IngestGuard::new(GapPolicy::HoldLast, n_nodes);
    let (clean, _) = guard.repair(&batches[0]).unwrap();
    let mut model = IMrDmd::fit(clean.as_ref().unwrap_or(&batches[0]), &c);
    let mut reported = 0usize;
    for b in &batches[1..] {
        let report = model.try_partial_fit(b, &mut guard).unwrap();
        reported += report.repairs.repaired;
    }
    let snap = MetricsSnapshot::capture();
    assert_eq!(snap.counter("ingest.gaps"), Some(nan_cells as u64));
    assert_eq!(
        snap.counter("ingest.repaired_cells"),
        Some(nan_cells as u64)
    );
    assert_eq!(snap.counter("round.count"), Some(batches.len() as u64 - 1));
    // The per-round reports and the global counter tell one story.
    let first_batch_repairs = nan_cells - reported;
    assert!(first_batch_repairs <= nan_cells);
    assert_eq!(snap.counter("ingest.masked_rows"), Some(0));
}

/// A forced eigensolver non-convergence models a fully exhausted escalation
/// ladder: arming the failpoint `k` times yields exactly `k` escalations
/// and `k` failures on the counters.
#[test]
fn forced_escalations_match_armed_count() {
    let _g = ObsGuard::acquire();
    if !obs::is_enabled() {
        return;
    }
    let dt = 1.0;
    let data = signal(8, 640, dt);
    let c = cfg(dt, 1);
    let mut m = IMrDmd::fit(&data.cols_range(0, 512), &c);
    obs::reset(); // count only the armed window
    failpoint::arm_eig_nonconvergence(3);
    let mut guard = IngestGuard::new(GapPolicy::HoldLast, 8);
    let report = m
        .try_partial_fit(&data.cols_range(512, 640), &mut guard)
        .expect("degraded operation is not an error");
    failpoint::disarm_all();
    assert!(report.new_faults > 0, "{report:?}");
    let snap = MetricsSnapshot::capture();
    assert_eq!(snap.counter("eig.escalations"), Some(3));
    assert_eq!(snap.counter("eig.failures"), Some(3));
    assert_eq!(snap.counter("fit.faults"), Some(report.new_faults as u64));
    // The health gauge mirrors the post-round snapshot in the report.
    assert_eq!(snap.gauge("health.coverage"), Some(report.health.coverage));
}

/// Golden test of the Prometheus text exposition renderer on a hand-built
/// snapshot: exact bytes, cumulative buckets, `+Inf`, `_sum`/`_count`.
#[test]
fn prometheus_render_golden() {
    let snap = MetricsSnapshot {
        metrics: vec![
            MetricEntry {
                name: "gemm.calls".into(),
                kind: "counter".into(),
                help: "Matrix-multiply kernel invocations".into(),
                counter: Some(3),
                gauge: None,
                histogram: None,
            },
            MetricEntry {
                name: "pool.threads".into(),
                kind: "gauge".into(),
                help: "Worker threads the pool is sized to".into(),
                counter: None,
                gauge: Some(4.0),
                histogram: None,
            },
            MetricEntry {
                name: "gemm.ns".into(),
                kind: "histogram".into(),
                help: "Wall time per matrix multiply".into(),
                counter: None,
                gauge: None,
                histogram: Some(HistogramEntry {
                    bounds_ns: vec![1_000, 4_000],
                    counts: vec![2, 1, 1],
                    count: 4,
                    sum_ns: 6_000,
                }),
            },
        ],
    };
    let expected = "\
# HELP gemm_calls Matrix-multiply kernel invocations
# TYPE gemm_calls counter
gemm_calls 3
# HELP pool_threads Worker threads the pool is sized to
# TYPE pool_threads gauge
pool_threads 4
# HELP gemm_ns Wall time per matrix multiply
# TYPE gemm_ns histogram
gemm_ns_bucket{le=\"1000\"} 2
gemm_ns_bucket{le=\"4000\"} 3
gemm_ns_bucket{le=\"+Inf\"} 4
gemm_ns_sum 6000
gemm_ns_count 4
";
    assert_eq!(snap.to_prometheus(), expected);
    // And the JSON round-trip preserves the snapshot exactly.
    let back: MetricsSnapshot = serde_json::from_str(&snap.to_json()).unwrap();
    assert_eq!(back, snap);
}

/// `Observer::disabled()` records nothing and perturbs nothing: the fit is
/// bitwise-identical to the observed run at every thread count.
#[test]
fn disabled_observer_is_bitwise_identical_and_silent() {
    let _g = ObsGuard::acquire();
    let dt = 1.0;
    let data = signal(10, 384, dt);
    for &n in &[1usize, 2, 4, 8] {
        let run = |observe: bool| -> Vec<u64> {
            obs::reset();
            if observe {
                Observer::enabled().install();
            } else {
                Observer::disabled().install();
            }
            let c = cfg(dt, n);
            let mut m = IMrDmd::fit(&data.cols_range(0, 256), &c);
            m.partial_fit(&data.cols_range(256, 384));
            bits(&m.reconstruct())
        };
        let observed = run(true);
        let silent = run(false);
        assert_eq!(observed, silent, "observer perturbed the numerics at {n}");
        // The disabled run left every counter untouched.
        let snap = MetricsSnapshot::capture();
        assert_eq!(snap.counter("gemm.calls"), Some(0), "threads {n}");
        assert_eq!(snap.counter("round.count"), Some(0), "threads {n}");
        Observer::enabled().install();
    }
}

/// The acceptance e2e: `imrdmd-cli stream --metrics-every N` over a
/// fault-injected synthetic stream emits JSON-lines whose
/// `ingest.repaired_cells` and `eig.escalations` counters exactly match the
/// fault injector's ground-truth event log (and the armed failpoint count).
#[test]
fn cli_stream_metrics_lines_match_ground_truth() {
    let _g = ObsGuard::acquire();
    if !obs::is_enabled() {
        return;
    }
    let n_nodes = 12;
    let total = 600;
    let chunk = 100;
    let mut machine = theta().scaled(n_nodes);
    machine.series_per_node = 1;
    let scenario = Scenario::sc_log(machine, total, 17);
    let faults = FaultConfig {
        seed: 99,
        drop_prob: 0.004,
        nan_run_prob: 0.5,
        nan_run_max_len: 10,
        sensor_dropout_prob: 0.2,
        duplicate_prob: 0.0,
        pathological_prob: 0.0,
    };
    let mut stream = FaultInjector::new(ChunkStream::new(&scenario, 0, total, chunk), faults);
    let batches: Vec<Mat> = (&mut stream).collect();
    let mut data = batches[0].clone();
    for b in &batches[1..] {
        data = data.hstack(b);
    }

    // Ground truth from the injector's event log, deduplicated.
    let mut corrupted: HashSet<(usize, usize)> = HashSet::new();
    for k in 0..batches.len() {
        for (row, col) in stream.corrupted_cells(k * chunk, chunk) {
            corrupted.insert((row, k * chunk + col));
        }
    }
    let nan_cells = data.as_slice().iter().filter(|v| !v.is_finite()).count();
    assert_eq!(corrupted.len(), nan_cells);
    assert!(nan_cells > 0, "test premise: the stream is corrupted");

    let csv = tmp("cli_metrics.csv");
    let model = tmp("cli_metrics.json");
    {
        let mut f = std::io::BufWriter::new(fs::File::create(&csv).unwrap());
        write_snapshots_csv(&mut f, &data, 0).unwrap();
        use std::io::Write as _;
        f.flush().unwrap();
    }

    // Two forced eig non-convergences = the escalation ground truth.
    failpoint::arm_eig_nonconvergence(2);
    let argv: Vec<String> = format!(
        "stream --input {} --dt {} --chunk {chunk} --levels 4 --gap-policy hold \
         --metrics-every 2 --model {}",
        csv.display(),
        scenario.dt(),
        model.display()
    )
    .split_whitespace()
    .map(String::from)
    .collect();
    let out = imrdmd_cli::run(&imrdmd_cli::parse_args(&argv).unwrap()).unwrap();
    failpoint::disarm_all();

    let lines: Vec<MetricsLine> = out
        .lines()
        .filter(|l| l.starts_with('{'))
        .map(|l| serde_json::from_str(l).unwrap())
        .collect();
    assert_eq!(lines.len(), 3, "6 chunks, a line every 2nd:\n{out}");
    let last = lines.last().unwrap();
    assert_eq!(last.step, total);
    assert_eq!(last.round, total / chunk);
    assert_eq!(
        last.snapshot.counter("ingest.repaired_cells"),
        Some(nan_cells as u64),
        "counter vs injector ground truth"
    );
    assert_eq!(last.snapshot.counter("ingest.gaps"), Some(nan_cells as u64));
    assert_eq!(last.snapshot.counter("eig.escalations"), Some(2));
    assert_eq!(last.snapshot.counter("eig.failures"), Some(2));
    // Counters are monotone across emissions.
    for w in lines.windows(2) {
        assert!(
            w[0].snapshot.counter("ingest.repaired_cells")
                <= w[1].snapshot.counter("ingest.repaired_cells")
        );
        assert!(w[0].snapshot.counter("gemm.calls") <= w[1].snapshot.counter("gemm.calls"));
    }
}
