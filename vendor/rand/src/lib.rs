//! Offline stand-in for the `rand` crate (0.9 method names).
//!
//! Deterministic xoshiro256** generator behind the `StdRng` name, with the
//! subset of the `Rng` surface this workspace uses: `random::<T>()`,
//! `random_range(..)` over integer and float ranges, and `random_bool(p)`.
//! The stream differs from upstream `StdRng` (ChaCha12) but is deterministic
//! per seed, which is all the synthetic-telemetry generators require.

use std::ops::{Range, RangeInclusive};

pub mod rngs {
    //! Concrete generator types.

    /// xoshiro256** generator (Blackman & Vigna), seeded via SplitMix64.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        pub(crate) s: [u64; 4],
    }

    impl StdRng {
        #[inline]
        pub(crate) fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

use rngs::StdRng;

/// Seeding entry points (mirrors `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 expansion, per the xoshiro reference implementation.
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        StdRng {
            s: [next(), next(), next(), next()],
        }
    }
}

/// Types producible by [`Rng::random`].
pub trait StandardUniform: Sized {
    /// Samples one value from the type's standard distribution.
    fn sample_standard(rng: &mut StdRng) -> Self;
}

impl StandardUniform for f64 {
    #[inline]
    fn sample_standard(rng: &mut StdRng) -> f64 {
        // 53 random bits → uniform [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
impl StandardUniform for u64 {
    #[inline]
    fn sample_standard(rng: &mut StdRng) -> u64 {
        rng.next_u64()
    }
}
impl StandardUniform for u32 {
    #[inline]
    fn sample_standard(rng: &mut StdRng) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}
impl StandardUniform for bool {
    #[inline]
    fn sample_standard(rng: &mut StdRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Types samplable from a half-open or inclusive range.
pub trait SampleUniform: Sized + PartialOrd {
    /// Samples uniformly from `[lo, hi)` (`hi` inclusive when `inclusive`).
    fn sample_range(rng: &mut StdRng, lo: Self, hi: Self, inclusive: bool) -> Self;
}

macro_rules! sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_range(rng: &mut StdRng, lo: Self, hi: Self, inclusive: bool) -> Self {
                let span = if inclusive {
                    (hi as u128) - (lo as u128) + 1
                } else {
                    assert!(hi > lo, "cannot sample from empty range");
                    (hi as u128) - (lo as u128)
                };
                // Modulo reduction; bias is negligible for the span sizes the
                // telemetry generators use (≪ 2^64).
                let v = (rng.next_u64() as u128) % span;
                lo + v as $t
            }
        }
    )*};
}
sample_uniform_int!(usize, u64, u32, u16, u8);

macro_rules! sample_uniform_signed {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_range(rng: &mut StdRng, lo: Self, hi: Self, inclusive: bool) -> Self {
                let span = if inclusive {
                    (hi as i128 - lo as i128 + 1) as u128
                } else {
                    assert!(hi > lo, "cannot sample from empty range");
                    (hi as i128 - lo as i128) as u128
                };
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
sample_uniform_signed!(isize, i64, i32, i16, i8);

impl SampleUniform for f64 {
    #[inline]
    fn sample_range(rng: &mut StdRng, lo: Self, hi: Self, _inclusive: bool) -> Self {
        let u = f64::sample_standard(rng);
        lo + (hi - lo) * u
    }
}
impl SampleUniform for f32 {
    #[inline]
    fn sample_range(rng: &mut StdRng, lo: Self, hi: Self, _inclusive: bool) -> Self {
        let u = f64::sample_standard(rng) as f32;
        lo + (hi - lo) * u
    }
}

/// Range argument accepted by [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Decomposes into `(lo, hi, inclusive)`.
    fn bounds(self) -> (T, T, bool);
}
impl<T> SampleRange<T> for Range<T> {
    fn bounds(self) -> (T, T, bool) {
        (self.start, self.end, false)
    }
}
impl<T> SampleRange<T> for RangeInclusive<T> {
    fn bounds(self) -> (T, T, bool) {
        let (lo, hi) = self.into_inner();
        (lo, hi, true)
    }
}

/// Sampling methods (mirrors `rand::Rng` with the 0.9 names).
pub trait Rng {
    /// Samples a value from the type's standard distribution.
    fn random<T: StandardUniform>(&mut self) -> T;
    /// Samples uniformly from a range.
    fn random_range<T: SampleUniform, R: SampleRange<T>>(&mut self, range: R) -> T;
    /// Returns `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool;
}

impl Rng for StdRng {
    #[inline]
    fn random<T: StandardUniform>(&mut self) -> T {
        T::sample_standard(self)
    }

    #[inline]
    fn random_range<T: SampleUniform, R: SampleRange<T>>(&mut self, range: R) -> T {
        let (lo, hi, inclusive) = range.bounds();
        T::sample_range(self, lo, hi, inclusive)
    }

    #[inline]
    fn random_bool(&mut self, p: f64) -> bool {
        f64::sample_standard(self) < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.random::<u64>(), c.random::<u64>());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let v: usize = rng.random_range(3..17);
            assert!((3..17).contains(&v));
            let f: f64 = rng.random_range(-2.0..3.0);
            assert!((-2.0..3.0).contains(&f));
            let w: usize = rng.random_range(5..=5);
            assert_eq!(w, 5);
        }
    }

    #[test]
    fn unit_interval_and_bool() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut ones = 0usize;
        for _ in 0..2000 {
            let u: f64 = rng.random();
            assert!((0.0..1.0).contains(&u));
            if rng.random_bool(0.25) {
                ones += 1;
            }
        }
        assert!(
            (300..700).contains(&ones),
            "p=0.25 of 2000 → ~500, got {ones}"
        );
    }
}
