//! Offline stand-in for `crossbeam`, covering the `channel` module surface
//! this workspace uses (`bounded`, `unbounded`, `Sender`, `Receiver`) by
//! delegating to `std::sync::mpsc`.

pub mod channel {
    //! MPSC channels with crossbeam's naming.

    use std::sync::mpsc;

    pub use std::sync::mpsc::{RecvError, SendError, TryRecvError};

    /// Sending half of a channel.
    pub struct Sender<T>(Inner<T>);

    enum Inner<T> {
        Bounded(mpsc::SyncSender<T>),
        Unbounded(mpsc::Sender<T>),
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(match &self.0 {
                Inner::Bounded(s) => Inner::Bounded(s.clone()),
                Inner::Unbounded(s) => Inner::Unbounded(s.clone()),
            })
        }
    }

    impl<T> Sender<T> {
        /// Sends a value, blocking while a bounded channel is full.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            match &self.0 {
                Inner::Bounded(s) => s.send(value),
                Inner::Unbounded(s) => s.send(value),
            }
        }
    }

    /// Receiving half of a channel.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        /// Blocks until a value arrives or all senders disconnect.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv()
        }

        /// Returns immediately with a value if one is ready.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv()
        }
    }

    /// Creates a channel holding at most `cap` in-flight messages.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender(Inner::Bounded(tx)), Receiver(rx))
    }

    /// Creates a channel with unlimited buffering.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(Inner::Unbounded(tx)), Receiver(rx))
    }
}

#[cfg(test)]
mod tests {
    use super::channel;

    #[test]
    fn bounded_roundtrip_across_threads() {
        let (tx, rx) = channel::bounded(1);
        assert!(rx.try_recv().is_err());
        std::thread::spawn(move || tx.send(42u32).unwrap());
        assert_eq!(rx.recv().unwrap(), 42);
    }
}
