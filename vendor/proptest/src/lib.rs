//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API this workspace uses:
//! [`Strategy`] with `prop_map`/`prop_flat_map`, range and tuple strategies,
//! [`collection::vec`], [`ProptestConfig`], and the `proptest!`,
//! `prop_assert!`, `prop_assert_eq!`, `prop_assume!` macros. Inputs are drawn
//! from a fixed-seed SplitMix64 stream so every run sees the same cases, and
//! there is no shrinking: a failure reports the case index and message.

use std::ops::{Range, RangeInclusive};

/// Deterministic generator feeding all strategies (SplitMix64).
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// The fixed-seed generator used by the `proptest!` harness.
    pub fn deterministic() -> Self {
        TestRng {
            state: 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform f64 in [0, 1).
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A recipe for producing random values of `Self::Value`.
pub trait Strategy {
    /// The type of value this strategy generates.
    type Value;

    /// Draws one value from the strategy.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Builds a dependent strategy from each generated value.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy adapter produced by [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;
    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.end > self.start, "empty range strategy");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(hi >= lo, "empty range strategy");
                let span = (hi as u128).wrapping_sub(lo as u128) + 1;
                lo.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}
int_range_strategy!(usize, u64, u32, u16, u8);

macro_rules! signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.end > self.start, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(hi >= lo, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
signed_range_strategy!(isize, i64, i32, i16, i8);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                self.start + (self.end - self.start) * rng.unit_f64() as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                lo + (hi - lo) * rng.unit_f64() as $t
            }
        }
    )*};
}
float_range_strategy!(f64, f32);

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
}

/// One repeated unit of a string pattern: a set of candidate characters and
/// an inclusive repetition count range.
struct PatternPiece {
    chars: Vec<char>,
    lo: usize,
    hi: usize,
}

/// Parses the small regex subset the string strategy supports: literal
/// characters and `[...]` classes (with `a-z` ranges), each optionally
/// followed by `{n}` or `{lo,hi}`.
fn parse_pattern(pattern: &str) -> Vec<PatternPiece> {
    let mut pieces = Vec::new();
    let chars: Vec<char> = pattern.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let candidates = if chars[i] == '[' {
            i += 1;
            let mut set = Vec::new();
            while i < chars.len() && chars[i] != ']' {
                if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                    let (lo, hi) = (chars[i] as u32, chars[i + 2] as u32);
                    assert!(lo <= hi, "bad class range in pattern {pattern:?}");
                    set.extend((lo..=hi).filter_map(char::from_u32));
                    i += 3;
                } else {
                    set.push(chars[i]);
                    i += 1;
                }
            }
            assert!(
                i < chars.len(),
                "unterminated [class] in pattern {pattern:?}"
            );
            i += 1; // consume ']'
            set
        } else {
            assert!(
                !"(){}|*+?.^$\\".contains(chars[i]),
                "unsupported pattern syntax {:?} in {pattern:?}",
                chars[i]
            );
            let c = chars[i];
            i += 1;
            vec![c]
        };
        let (lo, hi) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .expect("unterminated {rep} in pattern")
                + i;
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((a, b)) => (
                    a.trim().parse().expect("bad repetition lower bound"),
                    b.trim().parse().expect("bad repetition upper bound"),
                ),
                None => {
                    let n = body.trim().parse().expect("bad repetition count");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        assert!(
            lo <= hi && !candidates.is_empty(),
            "bad piece in {pattern:?}"
        );
        pieces.push(PatternPiece {
            chars: candidates,
            lo,
            hi,
        });
    }
    pieces
}

impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for piece in parse_pattern(self) {
            let n = piece.lo + (rng.next_u64() as usize) % (piece.hi - piece.lo + 1);
            for _ in 0..n {
                out.push(piece.chars[(rng.next_u64() as usize) % piece.chars.len()]);
            }
        }
        out
    }
}

/// A strategy yielding one value from a fixed list, uniformly.
pub struct OneOf<T> {
    choices: Vec<T>,
}

impl<T: Clone> Strategy for OneOf<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = (rng.next_u64() as usize) % self.choices.len();
        self.choices[i].clone()
    }
}

/// Picks uniformly from a non-empty list of values.
pub fn sample_select<T: Clone>(choices: Vec<T>) -> OneOf<T> {
    assert!(
        !choices.is_empty(),
        "sample_select needs at least one choice"
    );
    OneOf { choices }
}

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Length specification for [`vec()`](fn@vec): an exact `usize` or a range.
    pub struct SizeRange {
        lo: usize,
        hi: usize, // inclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }
    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.end > r.start, "empty vec length range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }
    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy for `Vec`s with lengths drawn from a [`SizeRange`].
    pub struct VecStrategy<S> {
        element: S,
        len: SizeRange,
    }

    /// Generates `Vec`s whose length is drawn from `len` (an exact size or a
    /// range) with elements drawn from `element`.
    pub fn vec<S: Strategy, L: Into<SizeRange>>(element: S, len: L) -> VecStrategy<S> {
        VecStrategy {
            element,
            len: len.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.lo + (rng.next_u64() as usize) % (self.len.hi - self.len.lo + 1);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Harness settings; construct with struct-update from `default()`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of successful cases each property must pass.
    pub cases: usize,
    /// Cap on `prop_assume!` rejections before the property errors out.
    pub max_global_rejects: usize,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 64,
            max_global_rejects: 1024,
        }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// An assertion failed; the property is falsified.
    Fail(String),
    /// `prop_assume!` filtered the input; try another case.
    Reject(String),
}

/// Per-case outcome used by the bodies generated by [`proptest!`].
pub type TestCaseResult = Result<(), TestCaseError>;

pub mod prelude {
    //! Single-import surface, mirroring `proptest::prelude`.
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, ProptestConfig,
        Strategy,
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case unless the operands compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {:?} != {:?}",
                l, r
            )));
        }
    }};
}

/// Fails the current case if the operands compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {:?} == {:?}",
                l, r
            )));
        }
    }};
}

/// Skips the current case (without failing) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return Err($crate::TestCaseError::Reject(stringify!($cond).to_string()));
        }
    };
}

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `config.cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::deterministic();
            let strat = ($($strat,)+);
            let mut passed = 0usize;
            let mut rejected = 0usize;
            while passed < config.cases {
                let ($($arg,)+) = $crate::Strategy::generate(&strat, &mut rng);
                let outcome: $crate::TestCaseResult = (|| {
                    $body
                    Ok(())
                })();
                match outcome {
                    Ok(()) => passed += 1,
                    Err($crate::TestCaseError::Reject(what)) => {
                        rejected += 1;
                        assert!(
                            rejected <= config.max_global_rejects,
                            "{} prop_assume rejections ({what})",
                            rejected
                        );
                    }
                    Err($crate::TestCaseError::Fail(msg)) => {
                        panic!("property '{}' falsified at case {}: {}", stringify!($name), passed, msg)
                    }
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn deterministic_stream() {
        let mut a = crate::TestRng::deterministic();
        let mut b = crate::TestRng::deterministic();
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 40, ..ProptestConfig::default() })]

        /// Ranges honour their bounds; tuple + flat-map + vec compose.
        #[test]
        fn strategies_respect_bounds(
            n in 1usize..9,
            x in -2.0f64..2.0,
            v in crate::collection::vec(0u32..5, 7),
        ) {
            prop_assert!((1..9).contains(&n));
            prop_assert!((-2.0..2.0).contains(&x));
            prop_assert_eq!(v.len(), 7);
            prop_assert!(v.iter().all(|&e| e < 5));
        }

        #[test]
        fn flat_map_dependent_lengths(v in (1usize..6).prop_flat_map(|n| {
            crate::collection::vec(0.0f64..1.0, n).prop_map(move |v| (n, v))
        })) {
            let (n, data) = v;
            prop_assert_eq!(data.len(), n);
        }

        #[test]
        fn assume_skips_without_failing(n in 0usize..10) {
            prop_assume!(n % 2 == 0);
            prop_assert!(n % 2 == 0);
        }
    }
}
