//! Offline stand-in for `criterion`.
//!
//! Provides the API surface this workspace's benches use — `Criterion`,
//! `benchmark_group`, `sample_size`, `bench_function`, `bench_with_input`,
//! `BenchmarkId`, `black_box`, and the `criterion_group!`/`criterion_main!`
//! macros — measuring wall-clock time with `std::time::Instant` and printing
//! a `name ... mean ± spread` line per benchmark. No statistics beyond
//! mean/min/max, no HTML reports.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier of one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new<S: fmt::Display, P: fmt::Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId {
            name: format!("{function_name}/{parameter}"),
        }
    }

    /// Identifier carrying only a parameter value.
    pub fn from_parameter<P: fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { name: s.into() }
    }
}
impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { name: s }
    }
}

/// Runs closures and records wall-clock samples.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `sample_size` executions of `f` (after one warm-up call).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f());
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            black_box(f());
            self.samples.push(t0.elapsed());
        }
    }
}

fn fmt_duration(d: Duration) -> String {
    let s = d.as_secs_f64();
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else {
        format!("{:.3} µs", s * 1e6)
    }
}

fn report(name: &str, samples: &[Duration]) {
    if samples.is_empty() {
        println!("{name:<50} (no samples)");
        return;
    }
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len() as u32;
    let min = *samples.iter().min().expect("non-empty");
    let max = *samples.iter().max().expect("non-empty");
    println!(
        "{name:<50} mean {:>12}  [min {:>12}, max {:>12}]  ({} samples)",
        fmt_duration(mean),
        fmt_duration(min),
        fmt_duration(max),
        samples.len()
    );
}

/// A named group of benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed executions each benchmark records.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Ignored (accepted for API compatibility).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<I: Into<BenchmarkId>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b);
        report(&format!("{}/{}", self.name, id), &b.samples);
        self
    }

    /// Runs one benchmark with an input value.
    pub fn bench_with_input<I: Into<BenchmarkId>, T: ?Sized, F: FnMut(&mut Bencher, &T)>(
        &mut self,
        id: I,
        input: &T,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id), &b.samples);
        self
    }

    /// Ends the group.
    pub fn finish(self) {
        let _ = self.criterion;
    }
}

/// Top-level benchmark harness handle.
#[derive(Default)]
pub struct Criterion {
    default_sample_size: usize,
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        let sample_size = if self.default_sample_size == 0 {
            10
        } else {
            self.default_sample_size
        };
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: if self.default_sample_size == 0 {
                10
            } else {
                self.default_sample_size
            },
        };
        f(&mut b);
        report(name, &b.samples);
        self
    }
}

/// Declares a benchmark entry function running each target in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let _ = $cfg;
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares `main` for a bench binary (`harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
