//! Offline stand-in for the `serde` crate.
//!
//! The build environment has no access to crates.io, so this crate provides
//! the subset of serde's API that the workspace actually uses, with the same
//! names and shapes: the `Serialize` / `Deserialize` traits (and their derive
//! macros), `Serializer` / `Deserializer`, `de::Error`, and
//! `de::DeserializeOwned`.
//!
//! Instead of serde's visitor-based zero-copy data model, everything funnels
//! through one self-describing [`Content`] tree. A `Serializer` consumes a
//! `Content`; a `Deserializer` produces one. `serde_json` (the sibling shim)
//! renders `Content` to JSON text and parses it back. This is slower than
//! real serde but behaviourally equivalent for the model-persistence and
//! artefact-writing paths in this workspace.

pub use serde_derive::{Deserialize, Serialize};

use std::fmt;

/// A self-describing serialized value — the pivot type between the
/// `Serialize` and `Deserialize` halves of the shim.
#[derive(Clone, Debug, PartialEq)]
pub enum Content {
    /// JSON `null`; also carries `None` and non-finite floats.
    Null,
    /// Boolean.
    Bool(bool),
    /// Signed integer.
    I64(i64),
    /// Unsigned integer.
    U64(u64),
    /// Floating point.
    F64(f64),
    /// String.
    Str(String),
    /// Ordered sequence (arrays, tuples, vectors).
    Seq(Vec<Content>),
    /// Ordered key-value map (structs, struct variants).
    Map(Vec<(String, Content)>),
}

pub mod ser {
    //! Serialization half: the `Serialize` / `Serializer` traits.
    use super::Content;
    use std::fmt::Display;

    /// Error trait for serializers (mirrors `serde::ser::Error`).
    pub trait Error: Sized + std::error::Error {
        /// Builds an error from a message.
        fn custom<T: Display>(msg: T) -> Self;
    }

    /// A type that can describe itself as a [`Content`] tree through any
    /// [`Serializer`].
    pub trait Serialize {
        /// Serializes `self` into the given serializer.
        fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
    }

    /// A sink that consumes one [`Content`] tree.
    pub trait Serializer: Sized {
        /// Value returned on success.
        type Ok;
        /// Error type.
        type Error: Error;
        /// Consumes the fully built content tree.
        fn serialize_content(self, content: Content) -> Result<Self::Ok, Self::Error>;
    }
}

pub mod de {
    //! Deserialization half: the `Deserialize` / `Deserializer` traits.
    use super::Content;
    use std::fmt::Display;

    /// Error trait for deserializers (mirrors `serde::de::Error`).
    pub trait Error: Sized + std::error::Error {
        /// Builds an error from a message.
        fn custom<T: Display>(msg: T) -> Self;
    }

    /// A type constructible from a [`Content`] tree.
    pub trait Deserialize<'de>: Sized {
        /// Deserializes `Self` from the given deserializer.
        fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
    }

    /// A source that yields one [`Content`] tree.
    pub trait Deserializer<'de>: Sized {
        /// Error type.
        type Error: Error;
        /// Produces the content tree to deserialize from.
        fn take_content(self) -> Result<Content, Self::Error>;
    }

    /// Marker for types deserializable without borrowing from the input
    /// (mirrors `serde::de::DeserializeOwned`).
    pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
    impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}
}

// Re-export the traits under their canonical names. The derive macros of the
// same name live in a different namespace, so both coexist exactly as in the
// real serde crate.
#[doc(inline)]
pub use de::{Deserialize, Deserializer};
#[doc(inline)]
pub use ser::{Serialize, Serializer};

/// Simple string error used by the built-in content serializer/deserializer.
#[derive(Debug, Clone)]
pub struct ContentError(pub String);

impl fmt::Display for ContentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}
impl std::error::Error for ContentError {}
impl ser::Error for ContentError {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        ContentError(msg.to_string())
    }
}
impl de::Error for ContentError {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        ContentError(msg.to_string())
    }
}

/// Serializer that materialises the [`Content`] tree itself.
pub struct ContentSerializer;

impl ser::Serializer for ContentSerializer {
    type Ok = Content;
    type Error = ContentError;
    fn serialize_content(self, content: Content) -> Result<Content, ContentError> {
        Ok(content)
    }
}

/// Deserializer reading from an in-memory [`Content`] tree.
pub struct ContentDeserializer(pub Content);

impl<'de> de::Deserializer<'de> for ContentDeserializer {
    type Error = ContentError;
    fn take_content(self) -> Result<Content, ContentError> {
        Ok(self.0)
    }
}

/// Serializes any value into a [`Content`] tree (infallible for the shim's
/// built-in serializer).
pub fn to_content<T: ser::Serialize + ?Sized>(value: &T) -> Content {
    match value.serialize(ContentSerializer) {
        Ok(c) => c,
        Err(_) => Content::Null,
    }
}

/// Deserializes any owned value from a [`Content`] tree, adapting the error
/// into the caller's error type.
pub fn from_content<T, E>(content: Content) -> Result<T, E>
where
    T: de::DeserializeOwned,
    E: de::Error,
{
    T::deserialize(ContentDeserializer(content)).map_err(|e| E::custom(e))
}

#[doc(hidden)]
pub mod __private {
    //! Helpers the derive macros expand to. Not public API.
    use super::{de, from_content, Content};

    /// Removes `key` from a struct's field map and deserializes it; a missing
    /// key deserializes from `Null` so `Option` fields default to `None`.
    pub fn take_field<T, E>(map: &mut Vec<(String, Content)>, key: &str) -> Result<T, E>
    where
        T: de::DeserializeOwned,
        E: de::Error,
    {
        let content = match map.iter().position(|(k, _)| k == key) {
            Some(i) => map.swap_remove(i).1,
            None => Content::Null,
        };
        from_content(content).map_err(|e: E| E::custom(format_args!("field `{key}`: {e}")))
    }

    /// Pulls the next element of a tuple-variant payload.
    pub fn next_elem<T, E>(it: &mut std::vec::IntoIter<Content>, variant: &str) -> Result<T, E>
    where
        T: de::DeserializeOwned,
        E: de::Error,
    {
        let content = it
            .next()
            .ok_or_else(|| E::custom(format_args!("variant `{variant}`: missing element")))?;
        from_content(content)
    }
}

// ---------------------------------------------------------------------------
// Serialize implementations for primitives and std containers.
// ---------------------------------------------------------------------------

macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl ser::Serialize for $t {
            fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
                #[allow(unused_comparisons)]
                if (*self as i128) < 0 {
                    s.serialize_content(Content::I64(*self as i64))
                } else {
                    s.serialize_content(Content::U64(*self as u64))
                }
            }
        }
    )*};
}
ser_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl ser::Serialize for f64 {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_content(Content::F64(*self))
    }
}
impl ser::Serialize for f32 {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_content(Content::F64(*self as f64))
    }
}
impl ser::Serialize for bool {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_content(Content::Bool(*self))
    }
}
impl ser::Serialize for str {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_content(Content::Str(self.to_string()))
    }
}
impl ser::Serialize for String {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_content(Content::Str(self.clone()))
    }
}
impl<T: ser::Serialize + ?Sized> ser::Serialize for &T {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(s)
    }
}
impl<T: ser::Serialize> ser::Serialize for [T] {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_content(Content::Seq(self.iter().map(to_content).collect()))
    }
}
impl<T: ser::Serialize> ser::Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        self.as_slice().serialize(s)
    }
}
impl<T: ser::Serialize, const N: usize> ser::Serialize for [T; N] {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        self.as_slice().serialize(s)
    }
}
impl<T: ser::Serialize> ser::Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        match self {
            Some(v) => v.serialize(s),
            None => s.serialize_content(Content::Null),
        }
    }
}

macro_rules! ser_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: ser::Serialize),+> ser::Serialize for ($($t,)+) {
            fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
                s.serialize_content(Content::Seq(vec![$(to_content(&self.$n)),+]))
            }
        }
    )*};
}
ser_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
}

// ---------------------------------------------------------------------------
// Deserialize implementations.
// ---------------------------------------------------------------------------

fn content_kind(c: &Content) -> &'static str {
    match c {
        Content::Null => "null",
        Content::Bool(_) => "bool",
        Content::I64(_) => "integer",
        Content::U64(_) => "integer",
        Content::F64(_) => "float",
        Content::Str(_) => "string",
        Content::Seq(_) => "sequence",
        Content::Map(_) => "map",
    }
}

macro_rules! de_int {
    ($($t:ty),*) => {$(
        impl<'de> de::Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
                let c = d.take_content()?;
                let err = |c: &Content| {
                    <D::Error as de::Error>::custom(format_args!(
                        "expected {}, found {}", stringify!($t), content_kind(c)
                    ))
                };
                match c {
                    Content::U64(v) => <$t>::try_from(v).map_err(|_| err(&Content::U64(v))),
                    Content::I64(v) => <$t>::try_from(v).map_err(|_| err(&Content::I64(v))),
                    Content::F64(v) if v.fract() == 0.0 && v.is_finite() => {
                        Ok(v as $t)
                    }
                    other => Err(err(&other)),
                }
            }
        }
    )*};
}
de_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<'de> de::Deserialize<'de> for f64 {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.take_content()? {
            Content::F64(v) => Ok(v),
            Content::I64(v) => Ok(v as f64),
            Content::U64(v) => Ok(v as f64),
            // Non-finite floats serialize as null (JSON has no NaN literal).
            Content::Null => Ok(f64::NAN),
            other => Err(<D::Error as de::Error>::custom(format_args!(
                "expected float, found {}",
                content_kind(&other)
            ))),
        }
    }
}
impl<'de> de::Deserialize<'de> for f32 {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        f64::deserialize(d).map(|v| v as f32)
    }
}
impl<'de> de::Deserialize<'de> for bool {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.take_content()? {
            Content::Bool(b) => Ok(b),
            other => Err(<D::Error as de::Error>::custom(format_args!(
                "expected bool, found {}",
                content_kind(&other)
            ))),
        }
    }
}
impl<'de> de::Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.take_content()? {
            Content::Str(v) => Ok(v),
            other => Err(<D::Error as de::Error>::custom(format_args!(
                "expected string, found {}",
                content_kind(&other)
            ))),
        }
    }
}
impl<'de, T: de::DeserializeOwned> de::Deserialize<'de> for Vec<T> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.take_content()? {
            Content::Seq(items) => items.into_iter().map(from_content).collect(),
            other => Err(<D::Error as de::Error>::custom(format_args!(
                "expected sequence, found {}",
                content_kind(&other)
            ))),
        }
    }
}
impl<'de, T: de::DeserializeOwned> de::Deserialize<'de> for Option<T> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.take_content()? {
            Content::Null => Ok(None),
            other => from_content(other).map(Some),
        }
    }
}

macro_rules! de_tuple {
    ($(($len:literal; $($n:tt $t:ident),+))*) => {$(
        impl<'de, $($t: de::DeserializeOwned),+> de::Deserialize<'de> for ($($t,)+) {
            fn deserialize<Des: Deserializer<'de>>(d: Des) -> Result<Self, Des::Error> {
                match d.take_content()? {
                    Content::Seq(items) if items.len() == $len => {
                        let mut it = items.into_iter();
                        Ok(($({
                            let _ = $n;
                            from_content::<$t, Des::Error>(it.next().expect("length checked"))?
                        },)+))
                    }
                    Content::Seq(items) => Err(<Des::Error as de::Error>::custom(format_args!(
                        "expected tuple of {}, found sequence of {}", $len, items.len()
                    ))),
                    other => Err(<Des::Error as de::Error>::custom(format_args!(
                        "expected tuple of {}, found {}", $len, content_kind(&other)
                    ))),
                }
            }
        }
    )*};
}
de_tuple! {
    (1; 0 A)
    (2; 0 A, 1 B)
    (3; 0 A, 1 B, 2 C)
    (4; 0 A, 1 B, 2 C, 3 D)
    (5; 0 A, 1 B, 2 C, 3 D, 4 E)
    (6; 0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
}
