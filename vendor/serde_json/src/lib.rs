//! Offline stand-in for `serde_json`.
//!
//! Renders the serde shim's [`Content`] tree as JSON text and parses JSON
//! text back into a `Content` tree. Covers the workspace's usage:
//! [`to_string`], [`to_string_pretty`], [`from_str`], and an [`Error`] type
//! that converts into the callers' error enums.
//!
//! Numbers round-trip exactly: `f64` values are written with Rust's shortest
//! round-trip formatting, and non-finite floats serialize as `null` (matching
//! serde_json's lossy default).

use serde::de::Error as _;
use serde::{Content, ContentDeserializer, ContentSerializer};
use std::fmt;

/// JSON serialization/deserialization error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}
impl serde::ser::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Error(msg.to_string())
    }
}
impl serde::de::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Error(msg.to_string())
    }
}

/// An owned JSON tree, as produced by the [`json!`] macro.
#[derive(Debug, Clone)]
pub struct Value(pub Content);

impl serde::Serialize for Value {
    fn serialize<S: serde::Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_content(self.0.clone())
    }
}

/// Builds a [`Value`] from a JSON object literal whose values are any
/// `Serialize` expressions: `json!({ "key": expr, ... })`.
#[macro_export]
macro_rules! json {
    ({ $($key:literal : $val:expr),* $(,)? }) => {{
        let entries: Vec<(String, $crate::__private_serde::Content)> = vec![
            $( ($key.to_string(), $crate::__private_serde::to_content(&$val)), )*
        ];
        $crate::Value($crate::__private_serde::Content::Map(entries))
    }};
}

#[doc(hidden)]
pub mod __private_serde {
    pub use serde::{to_content, Content};
}

/// Serializes a value to compact JSON.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let content = value
        .serialize(ContentSerializer)
        .map_err(|e| Error(e.to_string()))?;
    let mut out = String::new();
    write_content(&mut out, &content, None, 0);
    Ok(out)
}

/// Serializes a value to two-space-indented JSON.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let content = value
        .serialize(ContentSerializer)
        .map_err(|e| Error(e.to_string()))?;
    let mut out = String::new();
    write_content(&mut out, &content, Some(2), 0);
    Ok(out)
}

/// Deserializes a value from JSON text.
pub fn from_str<T: serde::de::DeserializeOwned>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let content = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at offset {}", p.pos)));
    }
    T::deserialize(ContentDeserializer(content)).map_err(Error::custom)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_content(out: &mut String, c: &Content, indent: Option<usize>, depth: usize) {
    match c {
        Content::Null => out.push_str("null"),
        Content::Bool(true) => out.push_str("true"),
        Content::Bool(false) => out.push_str("false"),
        Content::I64(v) => out.push_str(&v.to_string()),
        Content::U64(v) => out.push_str(&v.to_string()),
        Content::F64(v) => {
            if v.is_finite() {
                // Rust's shortest round-trip repr; force a `.0` on integral
                // values so the token re-parses as a float.
                let s = format!("{v}");
                out.push_str(&s);
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
        }
        Content::Str(s) => write_json_string(out, s),
        Content::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_content(out, item, indent, depth + 1);
            }
            if !items.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push(']');
        }
        Content::Map(entries) => {
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_json_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_content(out, v, indent, depth + 1);
            }
            if !entries.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        for _ in 0..w * depth {
            out.push(' ');
        }
    }
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Content, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Content::Null),
            Some(b't') if self.eat_literal("true") => Ok(Content::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Content::Bool(false)),
            Some(b'"') => self.parse_string().map(Content::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                        }
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Content::Seq(items));
                        }
                        _ => return Err(Error(format!("expected `,` or `]` at {}", self.pos))),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Content::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let value = self.parse_value()?;
                    entries.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                        }
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Content::Map(entries));
                        }
                        _ => return Err(Error(format!("expected `,` or `}}` at {}", self.pos))),
                    }
                }
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(Error(format!(
                "unexpected {:?} at offset {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(Error("unterminated string".into()));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(Error("unterminated escape".into()));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error("bad \\u escape".into()))?,
                                16,
                            )
                            .map_err(|_| Error("bad \\u escape".into()))?;
                            self.pos += 4;
                            // Surrogate pairs: read the low half if present.
                            let ch = if (0xD800..0xDC00).contains(&code) {
                                if self.eat_literal("\\u") {
                                    let hex2 = self
                                        .bytes
                                        .get(self.pos..self.pos + 4)
                                        .ok_or_else(|| Error("truncated \\u escape".into()))?;
                                    let low = u32::from_str_radix(
                                        std::str::from_utf8(hex2)
                                            .map_err(|_| Error("bad \\u escape".into()))?,
                                        16,
                                    )
                                    .map_err(|_| Error("bad \\u escape".into()))?;
                                    self.pos += 4;
                                    0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00)
                                } else {
                                    0xFFFD
                                }
                            } else {
                                code
                            };
                            out.push(char::from_u32(ch).unwrap_or('\u{FFFD}'));
                        }
                        other => {
                            return Err(Error(format!("bad escape `\\{}`", other as char)));
                        }
                    }
                }
                _ => {
                    // Collect the full UTF-8 sequence starting at pos-1.
                    let start = self.pos - 1;
                    while self.bytes.get(self.pos).is_some_and(|&b| b & 0xC0 == 0x80) {
                        self.pos += 1;
                    }
                    let s = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| Error("invalid UTF-8 in string".into()))?;
                    out.push_str(s);
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Content, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number".into()))?;
        if !text.contains(['.', 'e', 'E']) {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Content::U64(v));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Content::I64(v));
            }
        }
        text.parse::<f64>()
            .map(Content::F64)
            .map_err(|_| Error(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&3.0f64).unwrap(), "3.0");
        assert_eq!(from_str::<f64>("1.5").unwrap(), 1.5);
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(from_str::<String>("\"a\\nb\"").unwrap(), "a\nb");
    }

    #[test]
    fn roundtrip_nested() {
        let v: Vec<(usize, Vec<f64>)> = vec![(1, vec![0.25, -3.5]), (2, vec![])];
        let s = to_string(&v).unwrap();
        let back: Vec<(usize, Vec<f64>)> = from_str(&s).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn exact_f64_roundtrip() {
        let xs = [std::f64::consts::PI, 1e-308, -0.1, 1.0 / 3.0];
        for &x in &xs {
            let back: f64 = from_str(&to_string(&x).unwrap()).unwrap();
            assert_eq!(x.to_bits(), back.to_bits());
        }
    }

    #[test]
    fn option_and_null() {
        assert_eq!(to_string(&Option::<f64>::None).unwrap(), "null");
        assert_eq!(from_str::<Option<f64>>("null").unwrap(), None);
        assert_eq!(from_str::<Option<f64>>("2.5").unwrap(), Some(2.5));
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<f64>("1.5junk").is_err());
        assert!(from_str::<Vec<f64>>("[1.0,").is_err());
    }
}
