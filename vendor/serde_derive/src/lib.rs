//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` for the
//! shapes this workspace uses — named-field structs and enums whose variants
//! are unit, tuple, or struct-like — without `syn`/`quote`: the input token
//! stream is walked directly and the impl is emitted as source text.
//!
//! Unsupported shapes (generic types, tuple structs, `#[serde(...)]`
//! attributes) produce a compile error naming the limitation.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Parsed shape of the deriving type.
enum Input {
    Struct {
        name: String,
        fields: Vec<String>,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<String>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

/// Skips attributes (`#[...]`) and visibility (`pub`, `pub(...)`) at `i`.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket)
                {
                    *i += 1;
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1;
                }
            }
            _ => return,
        }
    }
}

/// Splits a brace-group token list into named fields, skipping each field's
/// type (commas nested in `()`/`[]` groups or `<...>` pairs don't split).
fn parse_named_fields(tokens: &[TokenTree]) -> Result<Vec<String>, String> {
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => return Err(format!("expected field name, found `{other}`")),
        };
        i += 1;
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == ':' => i += 1,
            other => {
                return Err(format!(
                    "expected `:` after field `{name}`, found `{other}`"
                ))
            }
        }
        // Skip the type: everything until a comma at angle-depth 0.
        let mut angle = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        fields.push(name);
    }
    Ok(fields)
}

/// Counts the top-level elements of a tuple-variant payload.
fn tuple_arity(tokens: &[TokenTree]) -> usize {
    if tokens.is_empty() {
        return 0;
    }
    let mut angle = 0i32;
    let mut arity = 1;
    let mut trailing_comma = false;
    for t in tokens {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                arity += 1;
                trailing_comma = true;
                continue;
            }
            _ => {}
        }
        trailing_comma = false;
    }
    if trailing_comma {
        arity -= 1;
    }
    arity
}

fn parse_variants(tokens: &[TokenTree]) -> Result<Vec<Variant>, String> {
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => return Err(format!("expected variant name, found `{other}`")),
        };
        i += 1;
        let kind = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantKind::Tuple(tuple_arity(&g.stream().into_iter().collect::<Vec<_>>()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantKind::Struct(parse_named_fields(
                    &g.stream().into_iter().collect::<Vec<_>>(),
                )?)
            }
            _ => VariantKind::Unit,
        };
        // Skip an optional discriminant, then the separating comma.
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == ',' => {
                    i += 1;
                    break;
                }
                _ => i += 1,
            }
        }
        variants.push(Variant { name, kind });
    }
    Ok(variants)
}

fn parse_input(input: TokenStream) -> Result<Input, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i);
    let keyword = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected `struct` or `enum`, found `{other:?}`")),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, found `{other:?}`")),
    };
    i += 1;
    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "the serde shim derive does not support generic type `{name}`"
        ));
    }
    let body = match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            g.stream().into_iter().collect::<Vec<_>>()
        }
        _ => {
            return Err(format!(
                "the serde shim derive supports only brace-bodied `{keyword} {name}`"
            ))
        }
    };
    match keyword.as_str() {
        "struct" => Ok(Input::Struct {
            name,
            fields: parse_named_fields(&body)?,
        }),
        "enum" => Ok(Input::Enum {
            name,
            variants: parse_variants(&body)?,
        }),
        other => Err(format!("cannot derive for `{other}`")),
    }
}

/// Derives the shim's `Serialize` for named structs and simple enums.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = match parse_input(input) {
        Ok(p) => p,
        Err(e) => return compile_error(&e),
    };
    let src = match parsed {
        Input::Struct { name, fields } => {
            let pushes: String = fields
                .iter()
                .map(|f| {
                    format!("__fields.push(({f:?}.to_string(), ::serde::to_content(&self.{f})));\n")
                })
                .collect();
            format!(
                "impl ::serde::ser::Serialize for {name} {{
                    fn serialize<S: ::serde::ser::Serializer>(&self, s: S) -> ::core::result::Result<S::Ok, S::Error> {{
                        let mut __fields: ::std::vec::Vec<(::std::string::String, ::serde::Content)> = ::std::vec::Vec::new();
                        {pushes}
                        s.serialize_content(::serde::Content::Map(__fields))
                    }}
                }}"
            )
        }
        Input::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => format!(
                            "{name}::{vn} => ::serde::Content::Str({vn:?}.to_string()),\n"
                        ),
                        VariantKind::Tuple(1) => format!(
                            "{name}::{vn}(__f0) => ::serde::Content::Map(vec![({vn:?}.to_string(), ::serde::to_content(__f0))]),\n"
                        ),
                        VariantKind::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|k| format!("__f{k}")).collect();
                            let elems: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::to_content({b})"))
                                .collect();
                            format!(
                                "{name}::{vn}({}) => ::serde::Content::Map(vec![({vn:?}.to_string(), ::serde::Content::Seq(vec![{}]))]),\n",
                                binds.join(", "),
                                elems.join(", ")
                            )
                        }
                        VariantKind::Struct(fields) => {
                            let binds = fields.join(", ");
                            let entries: Vec<String> = fields
                                .iter()
                                .map(|f| format!("({f:?}.to_string(), ::serde::to_content({f}))"))
                                .collect();
                            format!(
                                "{name}::{vn} {{ {binds} }} => ::serde::Content::Map(vec![({vn:?}.to_string(), ::serde::Content::Map(vec![{}]))]),\n",
                                entries.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::ser::Serialize for {name} {{
                    fn serialize<S: ::serde::ser::Serializer>(&self, s: S) -> ::core::result::Result<S::Ok, S::Error> {{
                        let __content = match self {{
                            {arms}
                        }};
                        s.serialize_content(__content)
                    }}
                }}"
            )
        }
    };
    src.parse().unwrap()
}

/// Derives the shim's `Deserialize` for named structs and simple enums.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = match parse_input(input) {
        Ok(p) => p,
        Err(e) => return compile_error(&e),
    };
    let src = match parsed {
        Input::Struct { name, fields } => {
            let takes: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::__private::take_field::<_, D::Error>(&mut __map, {f:?})?,\n"
                    )
                })
                .collect();
            format!(
                "impl<'de> ::serde::de::Deserialize<'de> for {name} {{
                    fn deserialize<D: ::serde::de::Deserializer<'de>>(d: D) -> ::core::result::Result<Self, D::Error> {{
                        let mut __map = match d.take_content()? {{
                            ::serde::Content::Map(m) => m,
                            _ => return ::core::result::Result::Err(
                                <D::Error as ::serde::de::Error>::custom(concat!(\"expected map for struct \", stringify!({name})))),
                        }};
                        ::core::result::Result::Ok({name} {{
                            {takes}
                        }})
                    }}
                }}"
            )
        }
        Input::Enum { name, variants } => {
            let unit_arms: String = variants
                .iter()
                .filter(|v| matches!(v.kind, VariantKind::Unit))
                .map(|v| {
                    format!(
                        "{:?} => ::core::result::Result::Ok({name}::{}),\n",
                        v.name, v.name
                    )
                })
                .collect();
            let payload_arms: String = variants
                .iter()
                .filter_map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => None,
                        VariantKind::Tuple(1) => Some(format!(
                            "{vn:?} => ::core::result::Result::Ok({name}::{vn}(::serde::from_content(__payload)?)),\n"
                        )),
                        VariantKind::Tuple(n) => {
                            let elems: Vec<String> = (0..*n)
                                .map(|_| format!("::serde::__private::next_elem::<_, D::Error>(&mut __it, {vn:?})?"))
                                .collect();
                            Some(format!(
                                "{vn:?} => match __payload {{
                                    ::serde::Content::Seq(__items) => {{
                                        let mut __it = __items.into_iter();
                                        ::core::result::Result::Ok({name}::{vn}({}))
                                    }}
                                    _ => ::core::result::Result::Err(<D::Error as ::serde::de::Error>::custom(
                                        concat!(\"expected sequence payload for variant \", {vn:?}))),
                                }},\n",
                                elems.join(", ")
                            ))
                        }
                        VariantKind::Struct(fields) => {
                            let takes: Vec<String> = fields
                                .iter()
                                .map(|f| format!("{f}: ::serde::__private::take_field::<_, D::Error>(&mut __vm, {f:?})?"))
                                .collect();
                            Some(format!(
                                "{vn:?} => match __payload {{
                                    ::serde::Content::Map(mut __vm) => ::core::result::Result::Ok({name}::{vn} {{ {} }}),
                                    _ => ::core::result::Result::Err(<D::Error as ::serde::de::Error>::custom(
                                        concat!(\"expected map payload for variant \", {vn:?}))),
                                }},\n",
                                takes.join(", ")
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "impl<'de> ::serde::de::Deserialize<'de> for {name} {{
                    fn deserialize<D: ::serde::de::Deserializer<'de>>(d: D) -> ::core::result::Result<Self, D::Error> {{
                        match d.take_content()? {{
                            ::serde::Content::Str(__s) => match __s.as_str() {{
                                {unit_arms}
                                __other => ::core::result::Result::Err(<D::Error as ::serde::de::Error>::custom(
                                    format!(concat!(\"unknown variant `{{}}` of \", stringify!({name})), __other))),
                            }},
                            ::serde::Content::Map(mut __m) if __m.len() == 1 => {{
                                let (__tag, __payload) = __m.pop().expect(\"length checked\");
                                match __tag.as_str() {{
                                    {payload_arms}
                                    __other => ::core::result::Result::Err(<D::Error as ::serde::de::Error>::custom(
                                        format!(concat!(\"unknown variant `{{}}` of \", stringify!({name})), __other))),
                                }}
                            }}
                            _ => ::core::result::Result::Err(<D::Error as ::serde::de::Error>::custom(
                                concat!(\"expected string or single-key map for enum \", stringify!({name})))),
                        }}
                    }}
                }}"
            )
        }
    };
    src.parse().unwrap()
}
